"""Tests for the experiment harness: registry, cheap experiments, CLI."""

import io

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.common import (
    ExperimentResult,
    QUALITY_PRESETS,
    load_grid,
    scale_for,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_by_id,
    run_experiment,
)


class TestRegistry:
    def test_every_paper_figure_is_covered(self):
        expected = {
            "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table1",
        }
        assert expected <= set(EXPERIMENTS)

    def test_extensions_registered(self):
        assert {"ext-jbsq", "ext-policies", "ext-safety"} <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            experiment_by_id("fig99")

    def test_descriptions_nonempty(self):
        for spec in EXPERIMENTS.values():
            assert spec.description


class TestCheapExperiments:
    """The analytic experiments run in milliseconds; exercise them fully."""

    def test_fig2_shape(self):
        results = run_experiment("fig2", quality="smoke")
        result = results[0]
        # Column 1 is the IPI curve: strictly decreasing with the quantum.
        ipi = [row[1] for row in result.rows]
        assert ipi == sorted(ipi, reverse=True)
        # rdtsc flat at ~21%.
        rdtsc = [row[2] for row in result.rows]
        assert all(abs(v - 21.0) < 2.0 for v in rdtsc)

    def test_fig15_uipi_above_concord_at_small_quanta(self):
        results = run_experiment("fig15", quality="smoke")
        for row in results[0].rows:
            quantum, uipi, _rdtsc, concord = row
            if quantum <= 10:
                # Interrupts cost more than cache-line polling wherever
                # preemption is frequent; the curves converge (and cross)
                # at large quanta where the flat instrumentation tax
                # dominates — exactly as in Figs. 2/15.
                assert uipi > concord

    def test_results_render_to_text(self):
        results = run_experiment("fig2", quality="smoke")
        text = results[0].render()
        assert "fig2" in text
        assert "quantum_us" in text


class TestCommonInfra:
    def test_quality_presets_ordered(self):
        assert (
            QUALITY_PRESETS["smoke"].num_requests
            < QUALITY_PRESETS["standard"].num_requests
            < QUALITY_PRESETS["full"].num_requests
        )

    def test_scale_for_unknown(self):
        with pytest.raises(KeyError):
            scale_for("ludicrous")

    def test_load_grid_monotone_and_bounded(self):
        grid = load_grid(1000.0, 8, low_fraction=0.25, high_fraction=1.0)
        assert len(grid) == 8
        assert grid == sorted(grid)
        assert grid[0] == pytest.approx(250.0)
        assert grid[-1] == pytest.approx(1000.0)

    def test_load_grid_needs_two_points(self):
        with pytest.raises(ValueError):
            load_grid(1000.0, 1)

    def test_load_grid_rejects_nonpositive_max_load(self):
        with pytest.raises(ValueError):
            load_grid(0.0, 4)
        with pytest.raises(ValueError):
            load_grid(-100.0, 4)

    def test_load_grid_rejects_inverted_fractions(self):
        with pytest.raises(ValueError):
            load_grid(1000.0, 4, low_fraction=0.9, high_fraction=0.5)
        with pytest.raises(ValueError):
            load_grid(1000.0, 4, low_fraction=0.5, high_fraction=0.5)

    def test_experiment_result_render_summary_and_notes(self):
        result = ExperimentResult("x", "demo", headers=["a"], rows=[[1]])
        result.summary["knee"] = 12.5
        result.note("hello")
        text = result.render()
        assert "knee = 12.5" in text
        assert "note: hello" in text


class TestCli:
    def test_list_command(self):
        stream = io.StringIO()
        assert cli_main(["list"], stream=stream) == 0
        output = stream.getvalue()
        assert "fig9" in output and "table1" in output

    def test_run_fig2(self, tmp_path):
        stream = io.StringIO()
        code = cli_main(
            ["run", "fig2", "--quality", "smoke", "--out", str(tmp_path)],
            stream=stream,
        )
        assert code == 0
        assert "Concord instrumentation" in stream.getvalue()
        assert (tmp_path / "fig2.txt").exists()

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            cli_main(["run", "fig99"], stream=io.StringIO())


class TestCompareCommand:
    def test_compare_runs_and_prints_table(self):
        stream = io.StringIO()
        code = cli_main(
            [
                "compare", "--workload", "fixed-1", "--requests", "400",
                "--load-krps", "500", "--workers", "4",
                "--systems", "persephone,concord",
            ],
            stream=stream,
        )
        assert code == 0
        output = stream.getvalue()
        assert "Persephone-FCFS" in output
        assert "Concord" in output
        assert "p99.9" in output

    def test_compare_unknown_system(self):
        with pytest.raises(KeyError):
            cli_main(
                ["compare", "--systems", "windows95"], stream=io.StringIO()
            )

    def test_compare_unknown_workload(self):
        with pytest.raises(KeyError):
            cli_main(
                ["compare", "--workload", "cobol"], stream=io.StringIO()
            )
