"""Tests for the fault-injection & resilience layer (repro.faults).

The load-bearing properties:

* **hot-path neutrality** — a rack built with no FaultPlan and no
  ResilienceConfig is bit-identical to one that never imported the layer;
* **determinism** — a fixed (plan, config, seed) triple replays
  bit-identically, serial or pooled;
* **semantics** — crashes lose (or requeue) exactly the swept in-flight
  population, the detector suspects and re-admits, retries restore
  goodput, blackouts degrade queue-aware routing without losing anything.
"""

import pickle

import pytest

from repro.cluster import Cluster
from repro.core import concord
from repro.faults import (
    DetectorConfig,
    FabricDegradation,
    FailureDetector,
    FaultPlan,
    ProbeDropout,
    ResilienceConfig,
    ServerCrash,
    TelemetryBlackout,
    WorkerStall,
    blackout_plan,
    crash_plan,
    stall_plan,
)
from repro.hardware import c6420
from repro.parallel import FaultJob, ParallelRunner, RackJob
from repro.workloads import PoissonProcess, bimodal_50_1_50_100

SEED = 11
NUM_SERVERS = 3
WORKERS = 2
QUANTUM_US = 5.0
NUM_REQUESTS = 1500


def rack_capacity_rps(workload):
    return NUM_SERVERS * WORKERS * 1e6 / workload.mean_us()


def run_rack(plan=None, resilience=None, policy="jsq", load_frac=0.6,
             seed=SEED, num_requests=NUM_REQUESTS, num_servers=NUM_SERVERS,
             fabric=None):
    workload = bimodal_50_1_50_100()
    cluster = Cluster(
        c6420(WORKERS), concord(QUANTUM_US), num_servers, policy=policy,
        seed=seed, fabric=fabric, fault_plan=plan, resilience=resilience,
    )
    load = load_frac * num_servers * WORKERS * 1e6 / workload.mean_us()
    return cluster.run(workload, PoissonProcess(load), num_requests)


def result_fingerprint(result):
    return [
        (r.rid, r.completion_cycle, r.payload["server"]) for r in result.records
    ]


# -- FaultPlan ----------------------------------------------------------------


class TestFaultPlan:
    def test_orders_by_onset(self):
        plan = FaultPlan(faults=(
            TelemetryBlackout(at_us=500.0, duration_us=10.0),
            ServerCrash(at_us=100.0, down_us=50.0),
        ))
        assert [f.at_us for f in plan.faults] == [100.0, 500.0]

    def test_rejects_non_fault_entries(self):
        with pytest.raises(TypeError):
            FaultPlan(faults=("crash at noon",))

    def test_validate_for_rejects_out_of_range_server(self):
        plan = crash_plan(at_us=10.0, down_us=5.0, server=7)
        with pytest.raises(ValueError, match="server"):
            plan.validate_for(num_servers=2)

    def test_degradation_multiplier_must_amplify(self):
        with pytest.raises(ValueError):
            FabricDegradation(at_us=1.0, duration_us=1.0, multiplier=0.5)

    def test_dropout_probability_range(self):
        with pytest.raises(ValueError):
            ProbeDropout(at_us=1.0, duration_us=1.0, drop_prob=0.0)
        with pytest.raises(ValueError):
            ProbeDropout(at_us=1.0, duration_us=1.0, drop_prob=1.5)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            ServerCrash(at_us=-1.0, down_us=5.0)
        with pytest.raises(ValueError):
            WorkerStall(at_us=1.0, duration_us=0.0)

    def test_plan_is_picklable(self):
        plan = FaultPlan(faults=(
            ServerCrash(at_us=10.0, down_us=5.0, server=1),
            TelemetryBlackout(at_us=20.0, duration_us=4.0),
            WorkerStall(at_us=1.0, duration_us=2.0, worker=0),
        ), name="mixed")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.describe() == plan.describe()

    def test_helpers(self):
        assert len(crash_plan(at_us=1.0, down_us=1.0)) == 1
        assert len(blackout_plan([(1.0, 2.0), (5.0, 6.0)])) == 2
        assert len(stall_plan(at_us=1.0, duration_us=1.0)) == 1


# -- hot-path neutrality ------------------------------------------------------


class TestFaultFreeNeutrality:
    def test_no_plan_is_bit_identical_to_plain_cluster(self):
        workload = bimodal_50_1_50_100()
        load = 0.6 * rack_capacity_rps(workload)
        plain = Cluster(
            c6420(WORKERS), concord(QUANTUM_US), NUM_SERVERS, policy="jsq",
            seed=SEED,
        ).run(workload, PoissonProcess(load), NUM_REQUESTS)
        gated = run_rack(plan=None, resilience=None)
        assert result_fingerprint(plain) == result_fingerprint(gated)
        assert plain.summary().p999 == gated.summary().p999

    def test_empty_plan_installs_nothing(self):
        result = run_rack(plan=FaultPlan(faults=()))
        assert result.fault_stats is None
        assert result.crashes == 0

    def test_fault_columns_zeroed_without_faults(self):
        result = run_rack()
        assert result.fault_stats is None
        assert result.resilience_stats is None
        assert (result.lost, result.shed, result.retries, result.hedges) == (
            0, 0, 0, 0
        )
        assert result.mttr_us == []
        assert result.goodput() == 1.0

    def test_faultjob_without_plan_matches_rackjob(self):
        workload = bimodal_50_1_50_100()
        load = 0.6 * rack_capacity_rps(workload)
        base = dict(
            machine=c6420(WORKERS), config=concord(QUANTUM_US),
            num_servers=NUM_SERVERS, policy="jsq", workload=workload,
            load_rps=load, num_requests=800, seed=SEED,
        )
        rack_row = RackJob(**base).run()
        fault_row = FaultJob(**base).run()
        for key in ("p50", "p99", "p999", "imbalance", "completed",
                    "drained"):
            assert fault_row[key] == rack_row[key]
        assert fault_row["crashes"] == 0
        assert fault_row["goodput"] == 1.0


# -- determinism --------------------------------------------------------------


class TestDeterminism:
    PLAN = FaultPlan(faults=(
        ServerCrash(at_us=1500.0, down_us=2000.0, server=1),
        TelemetryBlackout(at_us=5000.0, duration_us=1500.0),
        ProbeDropout(at_us=800.0, duration_us=3000.0, drop_prob=0.5),
    ), name="chaos")

    def test_same_plan_same_seed_replays_bit_identically(self):
        first = run_rack(plan=self.PLAN, resilience=ResilienceConfig())
        second = run_rack(plan=self.PLAN, resilience=ResilienceConfig())
        assert result_fingerprint(first) == result_fingerprint(second)
        assert first.fault_stats == second.fault_stats
        assert first.resilience_stats == second.resilience_stats
        assert first.mttr_us == second.mttr_us

    def test_different_seed_differs(self):
        first = run_rack(plan=self.PLAN, seed=SEED)
        second = run_rack(plan=self.PLAN, seed=SEED + 1)
        assert result_fingerprint(first) != result_fingerprint(second)

    def test_serial_vs_pooled_bit_identical(self):
        workload = bimodal_50_1_50_100()
        load = 0.6 * rack_capacity_rps(workload)
        jobs = [
            FaultJob(
                machine=c6420(WORKERS), config=concord(QUANTUM_US),
                num_servers=NUM_SERVERS, policy="jsq", workload=workload,
                load_rps=load, num_requests=700, seed=seed,
                fault_plan=self.PLAN, resilience=ResilienceConfig(),
            )
            for seed in (1, 2, 3, 4)
        ]
        serial = ParallelRunner(jobs=1).map(jobs)
        pooled = ParallelRunner(jobs=4).map(jobs)
        assert serial == pooled

    def test_faultjob_is_picklable(self):
        job = FaultJob(
            machine=c6420(WORKERS), config=concord(QUANTUM_US),
            num_servers=2, policy="jsq", workload=bimodal_50_1_50_100(),
            load_rps=1e5, num_requests=10, seed=1, fault_plan=self.PLAN,
            resilience=ResilienceConfig.hedged(),
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone.fault_plan == self.PLAN


# -- crash semantics ----------------------------------------------------------


class TestCrash:
    def test_crash_loses_inflight_and_window_arrivals(self):
        plan = crash_plan(at_us=1500.0, down_us=2500.0, server=1)
        result = run_rack(plan=plan)
        assert result.crashes == 1
        assert result.lost > 0
        assert result.drained  # losses are accounted, not hung
        assert len(result.records) + result.lost == result.num_offered
        assert result.goodput() < 1.0

    def test_requeue_preserves_swept_inflight(self):
        lost_mode = run_rack(
            plan=crash_plan(at_us=1500.0, down_us=2500.0, server=1)
        )
        requeue_mode = run_rack(
            plan=crash_plan(at_us=1500.0, down_us=2500.0, server=1,
                            requeue_inflight=True)
        )
        assert requeue_mode.requeued > 0
        # Only the arrivals routed into the dead window are lost; the swept
        # in-flight population survives via re-routing.
        assert requeue_mode.lost < lost_mode.lost
        assert requeue_mode.goodput() > lost_mode.goodput()

    def test_crashed_server_completes_nothing_while_down(self):
        plan = crash_plan(at_us=1000.0, down_us=4000.0, server=0)
        result = run_rack(plan=plan)
        cluster_clock = result.clock
        crash_rec = result.fault_stats["crash_log"][0]
        down = range(crash_rec["crash_cycle"], crash_rec["recover_cycle"])
        for record in result.server_results[0].records:
            assert record.completion_cycle not in down
        assert result.mttr_us  # recovery observed
        assert result.mttr_us[0] > cluster_clock.cycles_to_us(
            crash_rec["recover_cycle"] - crash_rec["crash_cycle"]
        ) * 0.99

    def test_retry_restores_goodput(self):
        plan = crash_plan(at_us=1500.0, down_us=2500.0, server=1)
        bare = run_rack(plan=plan)
        resilient = run_rack(plan=plan, resilience=ResilienceConfig())
        assert bare.goodput() < 0.95
        assert resilient.goodput() >= 0.9
        assert resilient.retries > 0
        assert resilient.drained

    def test_mttr_reported_per_crash(self):
        plan = FaultPlan(faults=(
            ServerCrash(at_us=1000.0, down_us=800.0, server=0),
            ServerCrash(at_us=4000.0, down_us=800.0, server=2),
        ))
        result = run_rack(plan=plan)
        assert result.crashes == 2
        assert len(result.mttr_us) == 2
        assert all(m >= 800.0 for m in result.mttr_us)


# -- blackout / degradation / stall / dropout ---------------------------------


class TestSignalFaults:
    def test_blackout_degrades_tail_without_losing_requests(self):
        clean = run_rack(load_frac=0.8)
        dark = run_rack(
            plan=blackout_plan([(500.0, 6000.0)]), load_frac=0.8
        )
        assert dark.lost == 0
        assert dark.drained
        assert len(dark.records) == dark.num_offered
        assert dark.summary().p999 > clean.summary().p999
        assert dark.fault_stats["reports_dropped"] > 0

    def test_blackout_freezes_report_board(self):
        result = run_rack(plan=blackout_plan([(500.0, 6000.0)]))
        clean = run_rack()
        assert result.telemetry_updates < clean.telemetry_updates

    def test_degradation_inflates_fabric_delay(self):
        plan = FaultPlan(faults=(
            FabricDegradation(at_us=500.0, duration_us=8000.0,
                              multiplier=16.0),
        ))
        slow = run_rack(plan=plan, load_frac=0.5)
        clean = run_rack(load_frac=0.5)
        slow_lat = sorted(slow.client_latencies_us())
        clean_lat = sorted(clean.client_latencies_us())
        assert slow_lat[len(slow_lat) // 2] > clean_lat[len(clean_lat) // 2]

    def test_stall_defers_preemption(self):
        # One server, stall covering the whole run: Concord's probe-driven
        # yields are deferred to the window end, so long requests hog.
        stall = run_rack(
            plan=stall_plan(at_us=0.0, duration_us=10_000_000.0, server=0),
            num_servers=1, load_frac=0.5,
        )
        clean = run_rack(num_servers=1, load_frac=0.5)
        assert stall.fault_stats["stalled_probes"] > 0
        stalled_preemptions = sum(
            s["preemptions"] for s in stall.worker_stats
        )
        clean_preemptions = sum(
            s["preemptions"] for s in clean.worker_stats
        )
        assert stalled_preemptions < clean_preemptions
        assert stall.summary().p999 > clean.summary().p999

    def test_dropout_reprobes_deterministically(self):
        plan = FaultPlan(faults=(
            ProbeDropout(at_us=0.0, duration_us=10_000_000.0,
                         drop_prob=0.5),
        ))
        first = run_rack(plan=plan, load_frac=0.5)
        second = run_rack(plan=plan, load_frac=0.5)
        assert first.fault_stats["dropped_probes"] > 0
        assert (
            first.fault_stats["dropped_probes"]
            == second.fault_stats["dropped_probes"]
        )
        assert result_fingerprint(first) == result_fingerprint(second)


# -- resilience mechanisms ----------------------------------------------------


class TestResilience:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(timeout_us=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            DetectorConfig(suspicion_timeout_us=0.0)

    def test_detector_suspects_and_readmits(self):
        plan = crash_plan(at_us=1500.0, down_us=2500.0, server=1)
        result = run_rack(plan=plan, resilience=ResilienceConfig())
        rows = result.suspicion_intervals
        assert rows, "crash must trigger suspicion"
        assert any(server == 1 for server, _start, _end in rows)
        assert any(end is not None for _server, _start, end in rows)
        assert result.resilience_stats["suspicions"] >= 1
        assert result.resilience_stats["readmissions"] >= 1

    def test_detector_unit_behaviour(self):
        clock = c6420(1).clock
        det = FailureDetector(clock, 2, DetectorConfig(
            suspicion_timeout_us=10.0, check_interval_us=5.0,
            probation_us=50.0,
        ))
        t0 = 0
        det.on_send(0, t0)
        late = t0 + clock.us_to_cycles(20.0)
        det.check(late)
        assert det.is_suspected(0)
        assert det.suspected() == [0]
        # replies clear suspicion immediately
        det.on_reply(0, late + 1)
        assert not det.is_suspected(0)
        # probationary re-admission without any reply
        det.on_send(1, t0)
        det.check(late)
        assert det.is_suspected(1)
        det.check(late + clock.us_to_cycles(60.0))
        assert not det.is_suspected(1)
        assert det.readmissions == 1

    def test_hedging_duplicates_are_deduped(self):
        plan = crash_plan(at_us=1500.0, down_us=2500.0, server=1)
        result = run_rack(
            plan=plan,
            resilience=ResilienceConfig.hedged(hedge_delay_us=300.0),
        )
        assert result.hedges > 0
        rids = [r.rid for r in result.records]
        assert len(rids) == len(set(rids))
        assert result.goodput() <= 1.0

    def test_shedding_counts_and_drains(self):
        result = run_rack(
            load_frac=1.3,
            num_requests=1200,
            resilience=ResilienceConfig(shed_queue_threshold=3),
        )
        assert result.shed > 0
        assert result.drained
        assert result.resilience_stats["shed"] == result.shed
        assert result.goodput() < 1.0

    def test_e2e_latencies_cover_completed_requests(self):
        plan = crash_plan(at_us=1500.0, down_us=2500.0, server=1)
        result = run_rack(plan=plan, resilience=ResilienceConfig())
        lat = result.e2e_latencies_us
        assert len(lat) == len(result.records)
        assert all(v > 0 for v in lat)


# -- warmup_frac boundary behaviour (satellite) -------------------------------


class TestWarmupFracBoundaries:
    def test_zero_warmup_keeps_every_record(self):
        result = run_rack(num_requests=400)
        assert len(result.measured_records(0.0)) == len(result.records)
        assert len(result.slowdowns(0.0)) == len(result.records)

    @pytest.mark.parametrize("bad", [1.0, 1.5, -0.1])
    def test_out_of_range_warmup_rejected(self, bad):
        result = run_rack(num_requests=400)
        with pytest.raises(ValueError, match="warmup_frac"):
            result.measured_records(bad)
        with pytest.raises(ValueError, match="warmup_frac"):
            result.slowdowns(bad)
        with pytest.raises(ValueError, match="warmup_frac"):
            result.per_server_summaries(bad)
        with pytest.raises(ValueError, match="warmup_frac"):
            result.slo_goodput(bad)

    @pytest.mark.parametrize("bad", [1.0, 2.0, -0.5])
    def test_simresult_accessors_reject_bad_warmup(self, bad):
        from repro.core.server import Server

        workload = bimodal_50_1_50_100()
        server = Server(c6420(WORKERS), concord(QUANTUM_US), seed=1)
        sim_result = server.run(workload, PoissonProcess(1e5), 300)
        with pytest.raises(ValueError, match="warmup_frac"):
            sim_result.measured_records(bad)
        with pytest.raises(ValueError, match="warmup_frac"):
            sim_result.slowdowns(bad)

    def test_simresult_zero_warmup_works(self):
        from repro.core.server import Server

        workload = bimodal_50_1_50_100()
        server = Server(c6420(WORKERS), concord(QUANTUM_US), seed=1)
        sim_result = server.run(workload, PoissonProcess(1e5), 300)
        assert len(sim_result.measured_records(0.0)) == 300


# -- observability integration ------------------------------------------------


class TestFaultProbes:
    def test_crash_recover_retry_events_emitted(self):
        from repro.obs import TraceConfig, tracing
        from repro.obs import events as ev

        plan = crash_plan(at_us=1500.0, down_us=2500.0, server=1)
        with tracing(TraceConfig.full()) as session:
            run_rack(plan=plan, resilience=ResilienceConfig(),
                     num_requests=600)
        balancer_bus = next(
            bus for bus in session.buses if bus.label == "balancer"
        )
        counters = balancer_bus.registry.snapshot()["counters"]
        assert counters.get("faults.crashes") == 1
        assert counters.get("faults.recoveries") == 1
        assert counters.get("resilience.retries", 0) > 0
        kinds = {e.kind for e in balancer_bus.events}
        assert {ev.CRASH, ev.RECOVER, ev.RETRY} <= kinds

    def test_shed_events_emitted(self):
        from repro.obs import TraceConfig, tracing
        from repro.obs import events as ev

        with tracing(TraceConfig.full()) as session:
            run_rack(
                load_frac=1.3, num_requests=600,
                resilience=ResilienceConfig(shed_queue_threshold=3),
            )
        balancer_bus = next(
            bus for bus in session.buses if bus.label == "balancer"
        )
        counters = balancer_bus.registry.snapshot()["counters"]
        assert counters.get("resilience.shed", 0) > 0
        assert any(e.kind == ev.SHED for e in balancer_bus.events)
