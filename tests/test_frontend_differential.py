"""Differential property testing: random programs compiled through the
Python->IR frontend must compute exactly what CPython computes.

This is the classic compiler-fuzzing trick: generate expression trees,
render them as a kernel, execute both natively and on the IR interpreter,
and compare — any divergence is a frontend or interpreter bug.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument import Interpreter


def build_expression(rng, depth, variables):
    """Render a random integer expression over ``variables`` as source."""
    if depth <= 0 or rng.random() < 0.3:
        if variables and rng.random() < 0.6:
            return rng.choice(variables)
        return str(rng.randrange(1, 50))
    op = rng.choice(["+", "-", "*", "&", "|", "^"])
    left = build_expression(rng, depth - 1, variables)
    right = build_expression(rng, depth - 1, variables)
    return "({} {} {})".format(left, op, right)


def build_program(seed):
    """A random straight-line + loop program; returns (source, reference)."""
    rng = random.Random(seed)
    lines = ["def main():"]
    variables = []
    for index in range(rng.randrange(1, 5)):
        name = "v{}".format(index)
        lines.append("    {} = {}".format(
            name, build_expression(rng, 2, variables)))
        variables.append(name)
    # One accumulation loop over a random expression.
    trip = rng.randrange(1, 30)
    lines.append("    acc = 0")
    lines.append("    for i in range({}):".format(trip))
    lines.append("        acc = acc + {}".format(
        build_expression(rng, 2, variables + ["i"])))
    # A conditional update.
    lines.append("    if acc > {}:".format(rng.randrange(0, 1000)))
    lines.append("        acc = acc - {}".format(rng.randrange(1, 100)))
    lines.append("    return acc")
    return "\n".join(lines)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=80, deadline=None)
def test_compiled_programs_match_cpython(seed):
    source = build_program(seed)
    namespace = {}
    exec(source, namespace)  # the reference implementation
    expected = namespace["main"]()

    # Compile the same source through the frontend.
    import ast as _ast
    import textwrap

    from repro.instrument.frontend import _FunctionCompiler

    tree = _ast.parse(textwrap.dedent(source))
    compiler = _FunctionCompiler(tree.body[0], {"main"})
    function = compiler.compile(tree.body[0].body)

    from repro.instrument.ir import Module

    module = Module("fuzz")
    module.add(function)
    actual = Interpreter(module).run().value
    assert actual == expected, source
