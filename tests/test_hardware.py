"""Unit tests for the hardware model."""

import pytest

from repro import constants
from repro.hardware import (
    CoherenceModel,
    CycleClock,
    MachineSpec,
    c6420,
    cloud_vm_4core,
    sapphire_rapids,
)


class TestCycleClock:
    def test_default_frequency_matches_testbed(self):
        assert CycleClock().freq_hz == 2_600_000_000

    def test_us_roundtrip(self):
        clock = CycleClock()
        assert clock.us_to_cycles(1) == 2600
        assert clock.cycles_to_us(2600) == pytest.approx(1.0)

    def test_ns_conversion(self):
        clock = CycleClock()
        assert clock.ns_to_cycles(100) == 260
        assert clock.cycles_to_ns(260) == pytest.approx(100.0)

    def test_fractional_us_rounds_up(self):
        clock = CycleClock(1_000_000_000)  # 1 GHz: 1 cycle per ns
        assert clock.us_to_cycles(0.0005) == 1  # half a ns rounds up

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            CycleClock(0)

    def test_equality_and_hash(self):
        assert CycleClock(10) == CycleClock(10)
        assert hash(CycleClock(10)) == hash(CycleClock(10))
        assert CycleClock(10) != CycleClock(20)

    def test_seconds_conversion(self):
        clock = CycleClock(2_000_000_000)
        assert clock.cycles(1.0) == 2_000_000_000
        assert clock.cycles_to_seconds(2_000_000_000) == pytest.approx(1.0)


class TestCoherenceModel:
    def test_paper_constants_at_unit_scale(self):
        model = CoherenceModel()
        assert model.probe_miss_cycles == constants.CACHELINE_MISS_CYCLES
        assert model.sq_handoff_cycles == constants.SQ_HANDOFF_CYCLES

    def test_sapphire_rapids_scaling(self):
        model = CoherenceModel(1.5)
        assert model.probe_miss_cycles == int(
            round(1.5 * constants.CACHELINE_MISS_CYCLES)
        )
        assert model.uipi_receive_cycles == int(
            round(1.5 * constants.UIPI_RECEIVE_CYCLES)
        )

    def test_scaled_composes(self):
        assert CoherenceModel(1.0).scaled(2.0).scale == pytest.approx(2.0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            CoherenceModel(0)


class TestMachineSpec:
    def test_c6420_defaults(self):
        machine = c6420()
        assert machine.num_workers == 14
        assert machine.clock.freq_hz == 2_600_000_000
        assert machine.total_threads == 15

    def test_cloud_vm_shape(self):
        # 4 vCPUs: dispatcher + networker + 2 workers (Fig. 13).
        assert cloud_vm_4core().num_workers == 2

    def test_sapphire_rapids_coherence(self):
        machine = sapphire_rapids()
        assert machine.coherence.scale == pytest.approx(1.5)

    def test_with_workers(self):
        machine = c6420().with_workers(4)
        assert machine.num_workers == 4
        assert machine.name == "c6420"

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            MachineSpec(name="bad", num_workers=0)
