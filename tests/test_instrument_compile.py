"""Differential tests for the compiled IR fast-path.

The compiled backend must be bit-identical to the interpreter — same
return value, cycle count, instruction count, probe firings, probe
timeline, and preempt-check observations — across **all 24 kernels and
both probe styles**, with the full instrumentation pipeline applied.
Fractional cycle charges (unroll discounts) make float addition
non-associative, so these tests are what licenses the code generator's
constant-folding rules.
"""

import struct

import pytest

from repro.instrument.compile import (
    CompiledModule,
    CompileUnsupported,
    executor_for,
    resolve_ir_backend,
)
from repro.instrument.interp import Interpreter, InterpreterError
from repro.instrument.ir import Function, Instr, Module, Terminator
from repro.instrument.kernels import KERNELS
from repro.instrument.optim import optimize_function
from repro.instrument.passes import (
    BaselineOptimizePass,
    CACHELINE_STYLE,
    LoopUnrollPass,
    ProbeInsertionPass,
    RDTSC_STYLE,
)
from repro.instrument.profile import profile_kernel


def build_instrumented(factory, style):
    """The full pipeline profile_kernel applies to the instrumented build."""
    module = factory()
    for function in module.functions.values():
        optimize_function(function)
    probe_pass = ProbeInsertionPass(style)
    for function in module.functions.values():
        probe_pass.run(function)
    if style == CACHELINE_STYLE:
        unroll = LoopUnrollPass(discount=True)
        for function in module.functions.values():
            unroll.run(function)
    else:
        baseline = BaselineOptimizePass()
        for function in module.functions.values():
            baseline.run(function)
    return module


def bits(value):
    """Bit-pattern identity: distinguishes NaN payloads and -0.0, which
    ``==`` would blur."""
    if isinstance(value, float):
        return struct.pack("<d", value)
    return value


@pytest.mark.parametrize("style", [CACHELINE_STYLE, RDTSC_STYLE])
@pytest.mark.parametrize("spec", KERNELS, ids=lambda s: s.name)
def test_compiled_matches_interpreter(spec, style):
    pokes_interp, pokes_compiled = [], []
    interp = Interpreter(build_instrumented(spec.factory, style))
    compiled = CompiledModule(build_instrumented(spec.factory, style))
    a = interp.run(preempt_check=pokes_interp.append)
    b = compiled.run(preempt_check=pokes_compiled.append)
    assert bits(a.value) == bits(b.value)
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.probes_fired == b.probes_fired
    assert a.probe_times == b.probe_times
    assert pokes_interp == pokes_compiled


@pytest.mark.parametrize("style", [CACHELINE_STYLE, RDTSC_STYLE])
def test_profile_kernel_identical_across_backends(monkeypatch, style):
    spec = KERNELS[0]
    monkeypatch.setenv("REPRO_IR_BACKEND", "interp")
    p_interp = profile_kernel(spec.factory, style=style)
    monkeypatch.setenv("REPRO_IR_BACKEND", "compiled")
    p_compiled = profile_kernel(spec.factory, style=style)
    assert p_interp.base_cycles == p_compiled.base_cycles
    assert p_interp.instrumented_cycles == p_compiled.instrumented_cycles
    assert p_interp.probes_fired == p_compiled.probes_fired
    assert p_interp.probe_times == p_compiled.probe_times
    assert p_interp.max_gap_cycles == p_compiled.max_gap_cycles


def test_periodic_probe_state_shared_with_interpreter():
    """Interleaved interpreted/compiled runs of one module stay in phase:
    the compiled code mutates the same attrs["_count"] slot."""
    module = build_instrumented(KERNELS[0].factory, CACHELINE_STYLE)
    interp = Interpreter(module)
    compiled = CompiledModule(module)
    a = interp.run()
    b = compiled.run()
    c = interp.run()
    # The second and third runs continue the same periodic phase the
    # first run left behind, whichever engine executes them.
    assert b.probes_fired == c.probes_fired
    assert a.instructions == b.instructions == c.instructions


def _tiny_module(ret=("x",)):
    module = Module("tiny")
    fn = Function("main", params=("x",))
    module.add(fn)
    block = fn.add_block("entry")
    block.append(Instr("add", "x", ("x", 1)))
    block.terminate(Terminator("ret", ret))
    return module


def test_executor_for_backends():
    assert isinstance(executor_for(_tiny_module(), backend="interp"),
                      Interpreter)
    assert isinstance(executor_for(_tiny_module(), backend="compiled"),
                      CompiledModule)
    assert isinstance(executor_for(_tiny_module(), backend="auto"),
                      CompiledModule)
    with pytest.raises(ValueError):
        executor_for(_tiny_module(), backend="jit")
    with pytest.raises(ValueError):
        resolve_ir_backend("llvm")


def test_unsupported_module_falls_back():
    # A tuple immediate has no exact source form, so the generator must
    # refuse it and executor_for must fall back to the interpreter.
    module = Module("odd")
    fn = Function("main", params=())
    module.add(fn)
    block = fn.add_block("entry")
    block.append(Instr("li", "x", ((1, 2),)))
    block.terminate(Terminator("ret", ("x",)))
    with pytest.raises(CompileUnsupported):
        CompiledModule(module)
    assert isinstance(executor_for(module, backend="auto"), Interpreter)
    with pytest.raises(CompileUnsupported):
        executor_for(module, backend="compiled")


def test_entry_arg_mismatch_raises_like_interpreter():
    module = _tiny_module()
    with pytest.raises(InterpreterError):
        CompiledModule(module).run(args=(1, 2))
    with pytest.raises(InterpreterError):
        Interpreter(module).run(args=(1, 2))


def test_instruction_budget_raises_same_error():
    module = Module("loop")
    fn = Function("main", params=())
    module.add(fn)
    block = fn.add_block("entry")
    block.append(Instr("li", "x", (0,)))
    block.terminate(Terminator("jump", ("spin",)))
    spin = fn.add_block("spin")
    spin.append(Instr("add", "x", ("x", 1)))
    spin.terminate(Terminator("jump", ("spin",)))
    for engine in (Interpreter(module), CompiledModule(module)):
        with pytest.raises(InterpreterError, match="instruction budget"):
            engine.run(max_instructions=1000)


def test_call_depth_raises_same_error():
    module = Module("deep")
    fn = Function("main", params=())
    module.add(fn)
    block = fn.add_block("entry")
    block.append(Instr("call", "x", ("main",)))
    block.terminate(Terminator("ret", ("x",)))
    for engine in (Interpreter(module), CompiledModule(module)):
        with pytest.raises(InterpreterError, match="call depth exceeded"):
            engine.run()
