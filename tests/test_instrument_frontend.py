"""Tests for the Python -> IR compiler frontend."""

import pytest

from repro.instrument import (
    CACHELINE_STYLE,
    Interpreter,
    ProbeInsertionPass,
    profile_kernel,
)
from repro.instrument.cfg import ControlFlowGraph
from repro.instrument.frontend import (
    CompileError,
    compile_function,
    compile_module,
    extern,
    mem,
)


def run(module, args=()):
    return Interpreter(module).run(args=args)


class TestExpressions:
    def test_arithmetic(self):
        def main():
            x = 6
            y = 7
            return x * y + 1

        assert run(compile_module([main])).value == 43

    def test_float_division(self):
        def main():
            return 1.0 / 4.0

        assert run(compile_module([main])).value == 0.25

    def test_unary_minus_and_not(self):
        def main():
            x = 5
            y = -x
            z = not 0
            return y + z

        assert run(compile_module([main])).value == -4

    def test_bit_operations(self):
        def main():
            x = 0b1100
            return ((x >> 2) | 1) ^ 2

        assert run(compile_module([main])).value == ((0b1100 >> 2) | 1) ^ 2

    def test_comparisons(self):
        def main():
            a = 3 < 4
            b = 4 <= 4
            c = 5 == 5
            d = 5 != 5
            e = 7 > 6
            f = 7 >= 8
            return a + b + c + d + e + f

        assert run(compile_module([main])).value == 4

    def test_augmented_assignment(self):
        def main():
            x = 1
            x += 4
            x *= 3
            return x

        assert run(compile_module([main])).value == 15


class TestControlFlow:
    def test_range_loop(self):
        def main(n):
            acc = 0
            for i in range(n):
                acc += i
            return acc

        assert run(compile_module([main]), args=(10,)).value == 45

    def test_range_start_stop_step(self):
        def main():
            acc = 0
            for i in range(2, 12, 3):
                acc += i
            return acc

        assert run(compile_module([main])).value == 2 + 5 + 8 + 11

    def test_nested_loops_have_two_natural_loops(self):
        def main(n):
            acc = 0
            for i in range(n):
                for j in range(n):
                    acc += i * j
            return acc

        module = compile_module([main])
        cfg = ControlFlowGraph(module.entry_function())
        assert len(cfg.natural_loops()) == 2
        assert run(module, args=(5,)).value == sum(
            i * j for i in range(5) for j in range(5)
        )

    def test_while_loop(self):
        def main():
            x = 1
            while x < 100:
                x = x * 2
            return x

        assert run(compile_module([main])).value == 128

    def test_if_else(self):
        def main(n):
            if n < 10:
                result = 1
            else:
                result = 2
            return result

        module = compile_module([main])
        assert run(module, args=(5,)).value == 1
        module = compile_module([main])
        assert run(module, args=(50,)).value == 2

    def test_if_with_returns_in_both_arms(self):
        def main(n):
            if n == 0:
                return 100
            else:
                return 200

        module = compile_module([main])
        assert run(module, args=(0,)).value == 100

    def test_if_without_else(self):
        def main(n):
            result = 0
            if n > 5:
                result = 1
            return result

        module = compile_module([main])
        assert run(module, args=(10,)).value == 1


class TestMemoryAndCalls:
    def test_mem_load_store(self):
        def main():
            mem[3] = 42
            return mem[3] + mem[4]

        assert run(compile_module([main])).value == 42

    def test_extern_costs_cycles(self):
        def main():
            extern("syscall", 5000)
            return 0

        result = run(compile_module([main]))
        assert result.cycles >= 5000

    def test_cross_function_call(self):
        def helper(x):
            return x * 2

        def main(n):
            return helper(n) + 1

        module = compile_module([helper, main])
        assert run(module, args=(5,)).value == 11

    def test_unknown_call_rejected(self):
        def main():
            return missing()  # noqa: F821

        with pytest.raises(CompileError):
            compile_module([main])


class TestRejections:
    def test_non_range_for(self):
        def main(items):
            for x in items:
                pass

        with pytest.raises(CompileError):
            compile_function(main)

    def test_unsupported_statement(self):
        def main():
            try:
                x = 1
            except Exception:
                x = 2
            return x

        with pytest.raises(CompileError):
            compile_function(main)

    def test_chained_comparison(self):
        def main(x):
            return 0 < x < 10

        with pytest.raises(CompileError):
            compile_function(main)

    def test_string_literal(self):
        def main():
            return "nope"

        with pytest.raises(CompileError):
            compile_function(main)

    def test_empty_module(self):
        with pytest.raises(CompileError):
            compile_module([])

    def test_unreachable_after_return(self):
        def main():
            return 1
            x = 2  # noqa

        with pytest.raises(CompileError):
            compile_function(main)


class TestPipelineIntegration:
    def test_compiled_kernel_profiles_like_builtin(self):
        def main(n):
            acc = 0.0
            for i in range(n):
                acc = acc + mem[i] * 1.5
                mem[i] = acc
            return acc

        profile = profile_kernel(
            lambda: compile_module([main], name="user-stream"),
            CACHELINE_STYLE,
            args=(5000,),
        )
        assert profile.probes_fired > 0
        assert -0.2 < profile.overhead_fraction < 0.05
        assert profile.timeliness_std_us(5.0) < 2.0

    def test_instrumented_result_unchanged(self):
        def main(n):
            acc = 0
            for i in range(n):
                acc += i
            return acc

        module = compile_module([main])
        base = run(module, args=(500,)).value
        instrumented = compile_module([main])
        ProbeInsertionPass(CACHELINE_STYLE).run(
            instrumented.entry_function()
        )
        assert run(instrumented, args=(500,)).value == base
