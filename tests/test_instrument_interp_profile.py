"""Tests for the IR interpreter and instrumentation profiles."""

import random

import pytest

from repro.instrument import (
    CACHELINE_STYLE,
    RDTSC_STYLE,
    FunctionBuilder,
    Interpreter,
    ProbeInsertionPass,
    profile_kernel,
)
from repro.instrument.interp import InterpreterError
from repro.instrument.ir import Module
from repro.instrument.kernels import KERNELS, kernel_by_name


def make_module(build):
    module = Module("test")
    b = FunctionBuilder("main")
    build(b)
    module.add(b.function)
    return module


def run_module(module, **kwargs):
    return Interpreter(module).run(**kwargs)


class TestInterpreter:
    def test_arithmetic_semantics(self):
        def build(b):
            b.li("x", 6)
            b.li("y", 7)
            b.emit("mul", "z", "x", "y")
            b.ret("z")

        assert run_module(make_module(build)).value == 42

    def test_loop_computes_sum(self):
        def build(b):
            b.li("acc", 0)

            def body(i):
                b.emit("add", "acc", "acc", i)

            b.counted_loop("l", 10, body)
            b.ret("acc")

        assert run_module(make_module(build)).value == sum(range(10))

    def test_memory_roundtrip(self):
        def build(b):
            b.li("v", 123)
            b.emit("store", None, "v", 5)
            b.emit("load", "out", 5)
            b.ret("out")

        assert run_module(make_module(build)).value == 123

    def test_division_by_zero_yields_zero(self):
        def build(b):
            b.li("x", 1.0)
            b.li("z", 0.0)
            b.emit("fdiv", "out", "x", "z")
            b.ret("out")

        assert run_module(make_module(build)).value == 0.0

    def test_cycles_accumulate_op_costs(self):
        def build(b):
            b.li("x", 1)       # 1 cycle
            b.emit("mul", "y", "x", "x")  # 3 cycles
            b.ret("y")         # 1 cycle (terminator)

        assert run_module(make_module(build)).cycles == 5

    def test_ext_call_charges_cost(self):
        def build(b):
            b.ext_call("x", "syscall", 777)
            b.ret()

        result = run_module(make_module(build))
        assert result.cycles == 777 + 1  # + ret terminator

    def test_cross_function_call(self):
        module = Module("m")
        helper = FunctionBuilder("helper", params=["a"])
        helper.emit("add", "out", "a", 1)
        helper.ret("out")
        module.add(helper.function)
        main = FunctionBuilder("main")
        main.li("x", 41)
        main.call("y", "helper", "x")
        main.ret("y")
        module.add(main.function)
        assert Interpreter(module).run().value == 42

    def test_unknown_callee_raises(self):
        def build(b):
            b.call("x", "missing")
            b.ret()

        with pytest.raises(InterpreterError):
            run_module(make_module(build))

    def test_instruction_budget(self):
        def build(b):
            b.li("acc", 0)

            def body(i):
                b.emit("add", "acc", "acc", 1)

            b.counted_loop("l", 10_000, body)
            b.ret("acc")

        with pytest.raises(InterpreterError):
            run_module(make_module(build), max_instructions=100)

    def test_probe_callback_invoked(self):
        def build(b):
            b.li("acc", 0)

            def body(i):
                b.emit("add", "acc", "acc", 1)

            b.counted_loop("l", 50, body)
            b.ret("acc")

        module = make_module(build)
        ProbeInsertionPass(CACHELINE_STYLE).run(module.entry_function())
        seen = []
        result = Interpreter(module).run(preempt_check=seen.append)
        assert result.probes_fired == len(seen)
        assert result.probes_fired > 0
        assert seen == sorted(seen)

    def test_memory_words_power_of_two(self):
        with pytest.raises(ValueError):
            Interpreter(Module("m"), memory_words=1000)

    def test_wrong_arity_raises(self):
        module = Module("m")
        f = FunctionBuilder("main", params=["a"])
        f.ret("a")
        module.add(f.function)
        with pytest.raises(InterpreterError):
            Interpreter(module).run(args=())


class TestProfiles:
    def test_concord_cheaper_than_ci_on_every_kernel(self):
        for spec in KERNELS[:6]:
            concord = profile_kernel(
                lambda s=spec: s.build(scale=0.15), CACHELINE_STYLE
            )
            ci = profile_kernel(
                lambda s=spec: s.build(scale=0.15), RDTSC_STYLE
            )
            assert concord.overhead_fraction < ci.overhead_fraction, spec.name

    def test_instrumented_and_base_runs_agree_on_result(self):
        spec = kernel_by_name("radix")
        base = Interpreter(spec.build(scale=0.1)).run()
        module = spec.build(scale=0.1)
        ProbeInsertionPass(CACHELINE_STYLE).run(module.entry_function())
        instrumented = Interpreter(module).run()
        assert base.value == instrumented.value

    def test_gap_sampling_bounded_by_max_gap(self):
        profile = profile_kernel(
            lambda: kernel_by_name("fft").build(scale=0.2), CACHELINE_STYLE
        )
        rng = random.Random(0)
        for _ in range(200):
            gap = profile.sample_gap_cycles(rng)
            assert 0 <= gap <= profile.max_gap_cycles

    def test_deviations_are_one_sided(self):
        profile = profile_kernel(
            lambda: kernel_by_name("kmeans").build(scale=0.2), CACHELINE_STYLE
        )
        deviations = profile.preemption_deviations_cycles(13000, samples=100)
        assert all(d >= 0 for d in deviations)

    def test_timeliness_under_2us_for_all_kernels(self):
        # Table 1's last-column claim, at the paper's 5us quantum.
        for spec in KERNELS:
            profile = profile_kernel(
                lambda s=spec: s.build(scale=0.25), CACHELINE_STYLE
            )
            std = profile.timeliness_std_us(5.0)
            assert std < 2.0, "{}: {}us".format(spec.name, std)

    def test_invalid_quantum_rejected(self):
        profile = profile_kernel(
            lambda: kernel_by_name("radix").build(scale=0.05), CACHELINE_STYLE
        )
        with pytest.raises(ValueError):
            profile.preemption_deviations_cycles(0)


class TestKernelRegistry:
    def test_24_kernels_registered(self):
        assert len(KERNELS) == 24
        suites = {spec.suite for spec in KERNELS}
        assert suites == {"Splash-2", "Phoenix", "Parsec"}

    def test_lookup(self):
        assert kernel_by_name("radix").suite == "Splash-2"
        with pytest.raises(KeyError):
            kernel_by_name("doom")

    def test_every_kernel_builds_and_runs(self):
        for spec in KERNELS:
            module = spec.build(scale=0.05)
            result = Interpreter(module).run(max_instructions=5_000_000)
            assert result.cycles > 0, spec.name
