"""Tests for the IR, builder, and CFG analyses."""

import pytest

from repro.instrument.builder import FunctionBuilder
from repro.instrument.cfg import ControlFlowGraph
from repro.instrument.ir import BasicBlock, Function, Instr, Module, Terminator


def simple_loop_function(trip=10, body_ops=3):
    b = FunctionBuilder("f")
    b.li("acc", 0)

    def body(i):
        for _ in range(body_ops):
            b.emit("add", "acc", "acc", i)

    b.counted_loop("loop", trip, body)
    b.ret("acc")
    return b.function


class TestIR:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instr("frobnicate", "x")

    def test_unknown_terminator_rejected(self):
        with pytest.raises(ValueError):
            Terminator("goto", ("x",))

    def test_block_single_termination(self):
        block = BasicBlock("b")
        block.terminate(Terminator("ret"))
        with pytest.raises(ValueError):
            block.terminate(Terminator("ret"))
        with pytest.raises(ValueError):
            block.append(Instr("li", "x", (1,)))

    def test_terminator_successors(self):
        assert Terminator("jump", ("a",)).successors() == ["a"]
        assert Terminator("br", ("c", "a", "b")).successors() == ["a", "b"]
        assert Terminator("ret").successors() == []

    def test_function_entry_is_first_block(self):
        fn = Function("f")
        fn.add_block("start")
        fn.add_block("other")
        assert fn.entry == "start"

    def test_duplicate_block_rejected(self):
        fn = Function("f")
        fn.add_block("a")
        with pytest.raises(ValueError):
            fn.add_block("a")

    def test_module_entry_function(self):
        module = Module("m")
        f = Function("main")
        module.add(f)
        assert module.entry_function() is f
        with pytest.raises(ValueError):
            module.add(Function("main"))

    def test_module_single_function_fallback(self):
        module = Module("m")
        f = Function("solo")
        module.add(f)
        assert module.entry_function() is f

    def test_module_ambiguous_entry(self):
        module = Module("m")
        module.add(Function("a"))
        module.add(Function("b"))
        with pytest.raises(ValueError):
            module.entry_function()

    def test_instruction_count_excludes_probes(self):
        block = BasicBlock("b")
        block.append(Instr("add", "x", ("x", 1)))
        block.append(Instr("probe", None, (), {"cost": 2}))
        assert block.instruction_count == 1


class TestBuilder:
    def test_counted_loop_structure(self):
        fn = simple_loop_function(trip=5)
        labels = set(fn.blocks)
        assert {"entry", "loop.header", "loop.body", "loop.latch",
                "loop.exit"} <= labels

    def test_fresh_names_unique(self):
        b = FunctionBuilder("f")
        names = {b.fresh() for _ in range(100)}
        assert len(names) == 100

    def test_ext_call_carries_cost(self):
        b = FunctionBuilder("f")
        b.ext_call("x", "memcpy", 500)
        b.ret()
        instr = b.function.block("entry").instrs[0]
        assert instr.is_ext_call
        assert instr.attrs["cost"] == 500


class TestCFG:
    def test_predecessors_and_successors(self):
        fn = simple_loop_function()
        cfg = ControlFlowGraph(fn)
        assert set(cfg.successors["loop.header"]) == {"loop.body", "loop.exit"}
        assert "loop.latch" in cfg.predecessors["loop.header"]

    def test_reachable_includes_all_loop_blocks(self):
        fn = simple_loop_function()
        cfg = ControlFlowGraph(fn)
        assert "loop.body" in cfg.reachable()

    def test_dominators_header_dominates_latch(self):
        fn = simple_loop_function()
        cfg = ControlFlowGraph(fn)
        dom = cfg.dominators()
        assert "loop.header" in dom["loop.latch"]
        assert "entry" in dom["loop.exit"]

    def test_back_edge_detected(self):
        fn = simple_loop_function()
        cfg = ControlFlowGraph(fn)
        assert ("loop.latch", "loop.header") in cfg.back_edges()

    def test_natural_loop_body(self):
        fn = simple_loop_function()
        cfg = ControlFlowGraph(fn)
        loops = cfg.natural_loops()
        assert len(loops) == 1
        assert loops[0].body == {"loop.header", "loop.body", "loop.latch"}

    def test_nested_loops_found(self):
        b = FunctionBuilder("nested")
        b.li("acc", 0)

        def outer(i):
            def inner(j):
                b.emit("add", "acc", "acc", j)

            b.counted_loop("in", 3, inner)

        b.counted_loop("out", 3, outer)
        b.ret("acc")
        cfg = ControlFlowGraph(b.function)
        assert len(cfg.natural_loops()) == 2

    def test_straightline_has_no_loops(self):
        b = FunctionBuilder("line")
        b.li("x", 1)
        b.ret("x")
        cfg = ControlFlowGraph(b.function)
        assert cfg.back_edges() == []
        assert cfg.natural_loops() == []

    def test_unterminated_block_rejected(self):
        fn = Function("f")
        fn.add_block("entry")
        with pytest.raises(ValueError):
            ControlFlowGraph(fn)

    def test_unknown_target_rejected(self):
        fn = Function("f")
        block = fn.add_block("entry")
        block.terminate(Terminator("jump", ("nowhere",)))
        with pytest.raises(ValueError):
            ControlFlowGraph(fn)
