"""Tests for constant folding and dead-code elimination."""

import pytest

from repro.instrument import FunctionBuilder, Interpreter
from repro.instrument.ir import Module
from repro.instrument.optim import (
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    optimize_function,
)


def module_of(builder):
    module = Module("t")
    module.add(builder.function)
    return module


class TestConstantFolding:
    def test_folds_literal_arithmetic(self):
        b = FunctionBuilder("main")
        b.li("x", 6)
        b.li("y", 7)
        b.emit("mul", "z", "x", "y")
        b.ret("z")
        fn = b.function
        assert ConstantFoldingPass().run(fn) > 0
        ops = [i.op for i in fn.block("entry").instrs]
        assert ops == ["li", "li", "li"]  # mul folded to li 42
        assert Interpreter(module_of(b)).run().value == 42

    def test_folds_branch_condition(self):
        b = FunctionBuilder("main")
        b.li("c", 1)
        cond = b.fresh("cond")
        b.emit("cmp_lt", cond, "c", 10)
        b.br(cond, "then", "else")
        b.block("then")
        b.ret(111)
        b.block("else")
        b.ret(222)
        fn = b.function
        ConstantFoldingPass().run(fn)
        assert fn.block("entry").terminator.args[0] == 1
        assert Interpreter(module_of(b)).run().value == 111

    def test_division_by_literal_zero_folds_to_zero(self):
        b = FunctionBuilder("main")
        b.emit("fdiv", "x", 1.0, 0.0)
        b.ret("x")
        fn = b.function
        ConstantFoldingPass().run(fn)
        assert Interpreter(module_of(b)).run().value == 0.0

    def test_does_not_fold_across_calls(self):
        module = Module("m")
        helper = FunctionBuilder("helper")
        helper.ret(5)
        module.add(helper.function)
        b = FunctionBuilder("main")
        b.li("x", 1)
        b.call("x", "helper")  # x is no longer the literal 1
        b.emit("add", "y", "x", 0)
        b.ret("y")
        module.add(b.function)
        ConstantFoldingPass().run(b.function)
        assert Interpreter(module).run().value == 5

    def test_preserves_semantics_on_kernels(self):
        from repro.instrument.kernels import KERNELS

        for spec in KERNELS[:8]:
            reference = Interpreter(spec.build(scale=0.05)).run()
            module = spec.build(scale=0.05)
            for fn in module.functions.values():
                optimize_function(fn)
            optimized = Interpreter(module).run()
            assert optimized.value == reference.value, spec.name
            assert optimized.cycles <= reference.cycles, spec.name


class TestDeadCodeElimination:
    def test_removes_unused_pure_instructions(self):
        b = FunctionBuilder("main")
        b.li("unused", 123)
        b.emit("mul", "also_unused", "unused", 2)
        b.li("result", 7)
        b.ret("result")
        fn = b.function
        removed = DeadCodeEliminationPass().run(fn)
        assert removed == 2
        assert Interpreter(module_of(b)).run().value == 7

    def test_keeps_stores_and_calls(self):
        module = Module("m")
        helper = FunctionBuilder("helper")
        helper.ret(1)
        module.add(helper.function)
        b = FunctionBuilder("main")
        b.li("v", 9)
        b.emit("store", None, "v", 3)
        b.call("ignored", "helper")
        b.emit("load", "out", 3)
        b.ret("out")
        module.add(b.function)
        DeadCodeEliminationPass().run(b.function)
        ops = [i.op for i in b.function.block("entry").instrs]
        assert "store" in ops and "call" in ops
        assert Interpreter(module).run().value == 9

    def test_transitively_dead_chain_removed(self):
        b = FunctionBuilder("main")
        b.li("a", 1)
        b.emit("add", "b", "a", 1)
        b.emit("add", "c", "b", 1)  # c unused -> whole chain dead
        b.ret(0)
        removed = DeadCodeEliminationPass().run(b.function)
        assert removed == 3

    def test_loop_variables_survive(self):
        b = FunctionBuilder("main")
        b.li("acc", 0)

        def body(i):
            b.emit("add", "acc", "acc", i)

        b.counted_loop("l", 10, body)
        b.ret("acc")
        DeadCodeEliminationPass().run(b.function)
        assert Interpreter(module_of(b)).run().value == 45


class TestPipeline:
    def test_optimize_reaches_fixed_point(self):
        b = FunctionBuilder("main")
        b.li("x", 2)
        b.emit("mul", "y", "x", 3)     # foldable -> li 6
        b.emit("add", "dead", "y", 1)  # dead after folding
        b.ret("y")
        changes = optimize_function(b.function)
        assert changes > 0
        assert optimize_function(b.function) == 0
        assert Interpreter(module_of(b)).run().value == 6
