"""Tests for constant folding and dead-code elimination."""

from repro.instrument import FunctionBuilder, Interpreter
from repro.instrument.ir import Module
from repro.instrument.optim import (
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    optimize_function,
)


def module_of(builder):
    module = Module("t")
    module.add(builder.function)
    return module


class TestConstantFolding:
    def test_folds_literal_arithmetic(self):
        b = FunctionBuilder("main")
        b.li("x", 6)
        b.li("y", 7)
        b.emit("mul", "z", "x", "y")
        b.ret("z")
        fn = b.function
        assert ConstantFoldingPass().run(fn) > 0
        ops = [i.op for i in fn.block("entry").instrs]
        assert ops == ["li", "li", "li"]  # mul folded to li 42
        assert Interpreter(module_of(b)).run().value == 42

    def test_folds_branch_condition(self):
        b = FunctionBuilder("main")
        b.li("c", 1)
        cond = b.fresh("cond")
        b.emit("cmp_lt", cond, "c", 10)
        b.br(cond, "then", "else")
        b.block("then")
        b.ret(111)
        b.block("else")
        b.ret(222)
        fn = b.function
        ConstantFoldingPass().run(fn)
        assert fn.block("entry").terminator.args[0] == 1
        assert Interpreter(module_of(b)).run().value == 111

    def test_division_by_literal_zero_folds_to_zero(self):
        b = FunctionBuilder("main")
        b.emit("fdiv", "x", 1.0, 0.0)
        b.ret("x")
        fn = b.function
        ConstantFoldingPass().run(fn)
        assert Interpreter(module_of(b)).run().value == 0.0

    def test_integer_division_by_literal_zero_does_not_crash(self):
        b = FunctionBuilder("main")
        b.li("n", 7)
        b.li("d", 0)
        b.emit("div", "q", "n", "d")
        b.ret("q")
        fn = b.function
        ConstantFoldingPass().run(fn)  # must not raise ZeroDivisionError
        ops = [i.op for i in fn.block("entry").instrs]
        assert ops == ["li", "li", "li"]  # div folded, to the interp's 0.0
        assert Interpreter(module_of(b)).run().value == 0.0

    def test_zero_divisor_fold_matches_interpreter(self):
        # The fold must agree with runtime semantics: x/0 evaluates to 0.0
        # in the interpreter, so folding may not produce anything else.
        for op, num, den in [("div", 9, 0), ("fdiv", 2.5, 0.0)]:
            reference = FunctionBuilder("main")
            reference.emit(op, "q", num, den)
            reference.ret("q")
            folded = FunctionBuilder("main")
            folded.emit(op, "q", num, den)
            folded.ret("q")
            ConstantFoldingPass().run(folded.function)
            assert (
                Interpreter(module_of(folded)).run().value
                == Interpreter(module_of(reference)).run().value
            ), op

    def test_does_not_fold_across_calls(self):
        module = Module("m")
        helper = FunctionBuilder("helper")
        helper.ret(5)
        module.add(helper.function)
        b = FunctionBuilder("main")
        b.li("x", 1)
        b.call("x", "helper")  # x is no longer the literal 1
        b.emit("add", "y", "x", 0)
        b.ret("y")
        module.add(b.function)
        ConstantFoldingPass().run(b.function)
        assert Interpreter(module).run().value == 5

    def test_preserves_semantics_on_kernels(self):
        from repro.instrument.kernels import KERNELS

        for spec in KERNELS[:8]:
            reference = Interpreter(spec.build(scale=0.05)).run()
            module = spec.build(scale=0.05)
            for fn in module.functions.values():
                optimize_function(fn)
            optimized = Interpreter(module).run()
            assert optimized.value == reference.value, spec.name
            assert optimized.cycles <= reference.cycles, spec.name


class TestDeadCodeElimination:
    def test_removes_unused_pure_instructions(self):
        b = FunctionBuilder("main")
        b.li("unused", 123)
        b.emit("mul", "also_unused", "unused", 2)
        b.li("result", 7)
        b.ret("result")
        fn = b.function
        removed = DeadCodeEliminationPass().run(fn)
        assert removed == 2
        assert Interpreter(module_of(b)).run().value == 7

    def test_keeps_stores_and_calls(self):
        module = Module("m")
        helper = FunctionBuilder("helper")
        helper.ret(1)
        module.add(helper.function)
        b = FunctionBuilder("main")
        b.li("v", 9)
        b.emit("store", None, "v", 3)
        b.call("ignored", "helper")
        b.emit("load", "out", 3)
        b.ret("out")
        module.add(b.function)
        DeadCodeEliminationPass().run(b.function)
        ops = [i.op for i in b.function.block("entry").instrs]
        assert "store" in ops and "call" in ops
        assert Interpreter(module).run().value == 9

    def test_transitively_dead_chain_removed(self):
        b = FunctionBuilder("main")
        b.li("a", 1)
        b.emit("add", "b", "a", 1)
        b.emit("add", "c", "b", 1)  # c unused -> whole chain dead
        b.ret(0)
        removed = DeadCodeEliminationPass().run(b.function)
        assert removed == 3

    def test_probes_survive_even_when_unused(self):
        from repro.instrument.passes import CACHELINE_STYLE, ProbeInsertionPass

        b = FunctionBuilder("main")
        b.li("result", 7)
        b.ret("result")
        fn = b.function
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        assert fn.probe_count() == 1
        DeadCodeEliminationPass().run(fn)
        assert fn.probe_count() == 1  # a probe's "result" is its side effect

    def test_ext_calls_survive_even_when_result_unused(self):
        b = FunctionBuilder("main")
        b.ext_call("ignored", "write_log", 500)
        b.li("result", 7)
        b.ret("result")
        fn = b.function
        removed = DeadCodeEliminationPass().run(fn)
        assert removed == 0
        ops = [i.op for i in fn.block("entry").instrs]
        assert "ext_call" in ops

    def test_full_pipeline_preserves_probes_and_ext_calls(self):
        from repro.instrument.passes import CACHELINE_STYLE, ProbeInsertionPass

        b = FunctionBuilder("main")
        b.li("acc", 0)

        def body(i):
            b.ext_call(b.fresh("e"), "syscall", 100)
            b.emit("add", "acc", "acc", 1)

        b.counted_loop("l", 5, body)
        b.ret("acc")
        fn = b.function
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        probes_before = fn.probe_count()
        ext_before = sum(
            1 for blk in fn.iter_blocks() for i in blk.instrs
            if i.is_ext_call
        )
        optimize_function(fn)
        assert fn.probe_count() == probes_before
        assert ext_before == sum(
            1 for blk in fn.iter_blocks() for i in blk.instrs
            if i.is_ext_call
        )

    def test_loop_variables_survive(self):
        b = FunctionBuilder("main")
        b.li("acc", 0)

        def body(i):
            b.emit("add", "acc", "acc", i)

        b.counted_loop("l", 10, body)
        b.ret("acc")
        DeadCodeEliminationPass().run(b.function)
        assert Interpreter(module_of(b)).run().value == 45


class TestPipeline:
    def test_optimize_reaches_fixed_point(self):
        b = FunctionBuilder("main")
        b.li("x", 2)
        b.emit("mul", "y", "x", 3)     # foldable -> li 6
        b.emit("add", "dead", "y", 1)  # dead after folding
        b.ret("y")
        changes = optimize_function(b.function)
        assert changes > 0
        assert optimize_function(b.function) == 0
        assert Interpreter(module_of(b)).run().value == 6
