"""Tests for the probe-insertion, unroll, and baseline-optimize passes."""

import pytest

from repro.instrument.builder import FunctionBuilder
from repro.instrument.ir import Function, Terminator
from repro.instrument.passes import (
    BaselineOptimizePass,
    CACHELINE_STYLE,
    RDTSC_STYLE,
    LoopUnrollPass,
    ProbeInsertionPass,
    VerifyError,
    verify_function,
)


def tight_loop_function(trip=100, body_ops=5):
    b = FunctionBuilder("tight")
    b.li("acc", 0)

    def body(i):
        for _ in range(body_ops):
            b.emit("add", "acc", "acc", 1)

    b.counted_loop("l", trip, body)
    b.ret("acc")
    return b.function


def ext_call_loop_function(trip=10, cost=1000):
    b = FunctionBuilder("extloop")
    b.li("acc", 0)

    def body(i):
        b.ext_call(b.fresh("e"), "syscall", cost)
        b.emit("add", "acc", "acc", 1)

    b.counted_loop("l", trip, body)
    b.ret("acc")
    return b.function


class TestVerify:
    def test_valid_function_passes(self):
        assert verify_function(tight_loop_function())

    def test_missing_terminator(self):
        fn = Function("bad")
        fn.add_block("entry")
        with pytest.raises(VerifyError):
            verify_function(fn)

    def test_unknown_jump_target(self):
        fn = Function("bad")
        block = fn.add_block("entry")
        block.terminate(Terminator("jump", ("gone",)))
        with pytest.raises(VerifyError):
            verify_function(fn)

    def test_ext_call_requires_cost(self):
        b = FunctionBuilder("f")
        from repro.instrument.ir import Instr

        b._current.append(Instr("ext_call", "x", ("foo",)))
        b.ret()
        with pytest.raises(VerifyError):
            verify_function(b.function)

    def test_register_never_defined_on_any_path(self):
        b = FunctionBuilder("f")
        b.emit("add", "y", "ghost", 1)
        b.ret("y")
        with pytest.raises(VerifyError, match="ghost"):
            verify_function(b.function)

    def test_register_defined_on_one_path_is_accepted(self):
        # The IR is not SSA: a definition on any path from the entry is
        # enough (the frontend emits this shape for if-assigned locals).
        b = FunctionBuilder("f", params=["p"])
        cond = b.emit("cmp_lt", "c", "p", 10)
        b.br(cond, "then", "merge")
        b.block("then")
        b.li("x", 1)
        b.jump("merge")
        b.block("merge")
        b.emit("add", "y", "x", "p")
        b.ret("y")
        assert verify_function(b.function)

    def test_undefined_use_in_unreachable_block_is_tolerated(self):
        b = FunctionBuilder("f")
        b.ret(0)
        b.block("island")
        b.emit("add", "y", "ghost", 1)
        b.ret("y")
        assert verify_function(b.function)


class TestProbeInsertion:
    def test_probe_at_function_entry(self):
        fn = tight_loop_function()
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        entry = fn.block(fn.entry)
        assert entry.instrs[0].is_probe

    def test_probe_at_loop_back_edge(self):
        fn = tight_loop_function()
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        latch = fn.block("l.latch")
        assert any(i.is_probe for i in latch.instrs)

    def test_probes_around_ext_calls(self):
        fn = ext_call_loop_function()
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        body = fn.block("l.body")
        ops = [("probe" if i.is_probe else i.op) for i in body.instrs]
        idx = ops.index("ext_call")
        assert ops[idx - 1] == "probe"
        assert ops[idx + 1] == "probe"

    def test_rdtsc_probes_carry_threshold(self):
        fn = tight_loop_function()
        ProbeInsertionPass(RDTSC_STYLE).run(fn)
        probes = [
            i for blk in fn.iter_blocks() for i in blk.instrs if i.is_probe
        ]
        assert probes
        assert all("threshold" in p.attrs for p in probes)
        assert all(p.attrs["cost"] == 30 for p in probes)

    def test_cacheline_probe_costs_two_cycles(self):
        fn = tight_loop_function()
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        probes = [
            i for blk in fn.iter_blocks() for i in blk.instrs if i.is_probe
        ]
        assert all(p.attrs["cost"] == 2 for p in probes)
        assert all("threshold" not in p.attrs for p in probes)

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            ProbeInsertionPass("morse")

    def test_returns_probe_count(self):
        fn = tight_loop_function()
        inserted = ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        assert inserted == fn.probe_count()


class TestLoopUnroll:
    def test_tight_loop_gets_period(self):
        fn = tight_loop_function(body_ops=5)
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        unrolled = LoopUnrollPass().run(fn)
        assert unrolled == 1
        latch_probes = [i for i in fn.block("l.latch").instrs if i.is_probe]
        assert latch_probes[0].attrs["period"] > 1

    def test_period_reaches_min_instructions(self):
        fn = tight_loop_function(body_ops=5)
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        LoopUnrollPass(min_instructions=200).run(fn)
        latch_probe = next(
            i for i in fn.block("l.latch").instrs if i.is_probe
        )
        from repro.instrument.cfg import ControlFlowGraph

        cfg = ControlFlowGraph(fn)
        loop = cfg.natural_loops()[0]
        body = cfg.loop_body_instruction_count(loop)
        assert latch_probe.attrs["period"] * body >= 200

    def test_wide_loop_untouched(self):
        fn = tight_loop_function(body_ops=250)
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        assert LoopUnrollPass().run(fn) == 0

    def test_ext_call_loop_skipped(self):
        fn = ext_call_loop_function()
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        assert LoopUnrollPass().run(fn) == 0

    def test_discount_set_on_terminators(self):
        fn = tight_loop_function(body_ops=5)
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        LoopUnrollPass(discount=True).run(fn)
        assert "discount" in fn.block("l.latch").terminator.attrs
        assert "discount" in fn.block("l.header").terminator.attrs

    def test_no_discount_mode(self):
        fn = tight_loop_function(body_ops=5)
        ProbeInsertionPass(CACHELINE_STYLE).run(fn)
        LoopUnrollPass(discount=False).run(fn)
        assert "discount" not in fn.block("l.latch").terminator.attrs


class TestBaselineOptimize:
    def test_tight_loop_discounted_up_to_cap(self):
        fn = tight_loop_function(body_ops=5)
        assert BaselineOptimizePass(max_factor=4).run(fn) == 1
        assert fn.block("l.latch").terminator.attrs["discount"] == 4

    def test_wide_loop_untouched(self):
        fn = tight_loop_function(body_ops=250)
        assert BaselineOptimizePass().run(fn) == 0

    def test_ext_call_loop_skipped(self):
        fn = ext_call_loop_function()
        assert BaselineOptimizePass().run(fn) == 0
