"""Cross-cutting integration tests: DES vs the analytical model, trace
replay, instrumentation-profile-driven scheduling, and LevelDB workloads
end to end."""

import pytest

from repro import constants
from repro.core import Server, concord, shinjuku
from repro.core.presets import coop_jbsq, persephone_fcfs
from repro.hardware import CycleClock, c6420
from repro.instrument import CACHELINE_STYLE, profile_kernel
from repro.instrument.kernels import kernel_by_name
from repro.kvstore import (
    concord_lock_counter_safety,
    leveldb_workload,
    shinjuku_api_window_safety,
)
from repro.metrics import summarize_slowdowns
from repro.models.overhead import worker_overhead
from repro.workloads import PoissonProcess, Trace
from repro.workloads.distributions import ClassMix, Fixed, RequestClass


class TestModelVsSimulation:
    """Eq. 2-4 must agree with the DES where the model's assumptions hold:
    saturated workers, fixed service, single quantum regime."""

    def test_goodput_matches_analytical_overhead(self):
        service_us = 100.0
        quantum_us = 10.0
        machine = c6420(4)
        config = coop_jbsq(quantum_us)
        workload = ClassMix(
            [RequestClass("spin", 1.0, Fixed(service_us))], name="fixed"
        )
        rate = 1.3 * machine.num_workers * 1e6 / service_us
        server = Server(machine, config, seed=1)
        duration_us = 30_000
        result = server.run(
            workload, PoissonProcess(rate),
            int(rate * duration_us / 1e6) + 1, until_us=duration_us,
        )
        measured_overhead = 1.0 - result.goodput_fraction()

        clock = CycleClock()
        mech = config.preemption_factory(machine)
        breakdown = worker_overhead(
            clock.us_to_cycles(service_us),
            clock.us_to_cycles(quantum_us),
            cnotif=mech.worker_disruption_cycles,
            cswitch=mech.context_switch_cycles,
            cnext=constants.JBSQ_RESIDUAL_CYCLES,
            proc_fraction=mech.proc_overhead
            + constants.RUNTIME_PROC_OVERHEAD_FRACTION,
        )
        # Model: wasted / (service + wasted); DES measures the same thing
        # plus probe-gap notice latency and warmup edges.
        predicted = breakdown.wasted_cycles / (
            breakdown.service_cycles + breakdown.wasted_cycles
        )
        assert measured_overhead == pytest.approx(predicted, abs=0.02)


class TestTraceReplay:
    def test_replay_is_deterministic_and_exact(self):
        import random

        workload = leveldb_workload({"GET": 0.5, "SCAN": 0.5})
        trace = Trace.sample(
            workload, PoissonProcess(20_000), 1500, random.Random(3)
        )
        machine = c6420(4)
        a = Server(machine, persephone_fcfs(), seed=1).run_trace(trace)
        b = Server(machine, persephone_fcfs(), seed=1).run_trace(trace)
        # Identical trace + identical seed (the seed still drives the
        # dispatcher's flag-poll discovery jitter): bit-exact replay.
        assert a.slowdowns() == b.slowdowns()
        assert len(a.records) == len(trace)
        kinds = sorted(r.kind for r in a.records)
        assert kinds == sorted(r.kind for r in trace)

    def test_replay_pairs_configs_fairly(self):
        import random

        workload = leveldb_workload({"GET": 0.5, "SCAN": 0.5})
        trace = Trace.sample(
            workload, PoissonProcess(25_000), 1200, random.Random(5)
        )
        machine = c6420(8)
        preemptive = Server(machine, shinjuku(5.0), seed=1).run_trace(trace)
        blocking = Server(machine, persephone_fcfs(), seed=1).run_trace(trace)
        get_tail = lambda result: summarize_slowdowns(
            [r.slowdown() for r in result.records if r.kind == "GET"]
        ).p999
        # Same requests, same instants: preemption must win for GETs.
        assert get_tail(preemptive) < get_tail(blocking)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            Server(c6420(2), persephone_fcfs()).run_trace(Trace())


class TestProfileDrivenScheduling:
    def test_kernel_profile_feeds_notice_latency(self):
        # ocean-ncp has multi-microsecond probe gaps (halo exchanges); a
        # Concord server driven by its profile sees larger notice latency
        # than the default dense-probe assumption, and the tail reflects it.
        profile = profile_kernel(
            lambda: kernel_by_name("ocean-ncp").build(scale=0.3),
            CACHELINE_STYLE,
        )
        assert profile.max_gap_cycles > 10 * constants.PROBE_INTERVAL_CYCLES
        machine = c6420(4)
        workload = ClassMix(
            [
                RequestClass("short", 0.9, Fixed(1.0)),
                RequestClass("long", 0.1, Fixed(200.0)),
            ],
            name="mix",
        )
        rate = 0.6 * machine.num_workers * 1e6 / workload.mean_us()
        dense = Server(machine, concord(5.0), seed=2).run(
            workload, PoissonProcess(rate), 4000
        )
        coarse = Server(machine, concord(5.0), seed=2, profile=profile).run(
            workload, PoissonProcess(rate), 4000
        )
        dense_tail = summarize_slowdowns(dense.slowdowns()).p999
        coarse_tail = summarize_slowdowns(coarse.slowdowns()).p999
        assert coarse_tail >= dense_tail * 0.9  # never dramatically better


class TestLevelDBEndToEnd:
    def test_safety_models_change_the_tail(self):
        # Same LevelDB workload, Shinjuku-style API windows vs Concord's
        # lock counter: the lock counter preempts more promptly, so GETs
        # behind SCANs see a tighter tail.
        workload = leveldb_workload({"GET": 0.5, "SCAN": 0.5})
        machine = c6420(8)
        rate = 0.5 * machine.num_workers * 1e6 / workload.mean_us()

        def tail(safety):
            config = coop_jbsq(5.0, safety=safety)
            result = Server(machine, config, seed=3).run(
                workload, PoissonProcess(rate), 5000
            )
            gets = [
                r.slowdown() for r in result.measured_records()
                if r.kind == "GET"
            ]
            return summarize_slowdowns(gets).p999

        counter_tail = tail(concord_lock_counter_safety())
        # Coarse API segments (50us iterator chunks) defer every SCAN
        # preemption by tens of microseconds; GETs queue behind them.
        window_tail = tail(shinjuku_api_window_safety(scan_segment_us=50.0))
        assert counter_tail < window_tail
