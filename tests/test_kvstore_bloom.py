"""Tests for bloom filters and their integration into sorted tables."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.bloom import BloomFilter
from repro.kvstore.memtable import ValueKind
from repro.kvstore.table import SortedTable


class TestBloomFilter:
    def test_no_false_negatives(self):
        keys = [b"key-%d" % i for i in range(2000)]
        bloom = BloomFilter.from_keys(keys)
        assert all(bloom.may_contain(key) for key in keys)

    def test_low_false_positive_rate(self):
        keys = [b"present-%d" % i for i in range(5000)]
        bloom = BloomFilter.from_keys(keys, bits_per_key=10)
        absent = [b"absent-%d" % i for i in range(5000)]
        false_positives = sum(1 for key in absent if bloom.may_contain(key))
        assert false_positives / len(absent) < 0.03

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(0)
        assert not bloom.may_contain(b"anything")

    def test_contains_operator(self):
        bloom = BloomFilter.from_keys([b"a"])
        assert b"a" in bloom

    def test_theoretical_fp_rate_reasonable(self):
        bloom = BloomFilter.from_keys(
            [b"k%d" % i for i in range(1000)], bits_per_key=10
        )
        assert 0.0 < bloom.false_positive_rate() < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(-1)
        with pytest.raises(ValueError):
            BloomFilter(10, bits_per_key=0)

    @given(
        keys=st.lists(st.binary(min_size=1, max_size=16), min_size=1,
                      max_size=100, unique=True)
    )
    @settings(max_examples=60)
    def test_property_members_always_found(self, keys):
        bloom = BloomFilter.from_keys(keys)
        assert all(key in bloom for key in keys)


class TestTableBloomIntegration:
    def test_absent_keys_short_circuit(self):
        entries = [
            (b"key-%04d" % i, ValueKind.VALUE, b"v") for i in range(500)
        ]
        table = SortedTable(entries)
        rng = random.Random(0)
        misses = 0
        for _ in range(500):
            key = b"miss-%d" % rng.randrange(10**6)
            found, _value = table.get(key)
            assert not found
            misses += 1
        # Nearly all misses were answered by the bloom filter alone.
        assert table.bloom_negatives > 0.9 * misses

    def test_present_keys_unaffected(self):
        entries = [(b"a", ValueKind.VALUE, b"1"), (b"b", ValueKind.VALUE, b"2")]
        table = SortedTable(entries)
        assert table.get(b"a") == (True, b"1")
        assert table.get(b"b") == (True, b"2")
        assert table.bloom_negatives == 0
