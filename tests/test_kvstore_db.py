"""Tests for the DB facade, cost model, and LevelDB application."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import (
    DB,
    DBOptions,
    LevelDBApp,
    LevelDBCostModel,
    WriteBatch,
    concord_lock_counter_safety,
    leveldb_workload,
    shinjuku_api_window_safety,
)
from repro.workloads.named import LEVELDB_GET_US, LEVELDB_SCAN_US


class TestDB:
    def test_put_get_delete(self):
        db = DB()
        db.put(b"k", b"v")
        assert db.get(b"k") == b"v"
        db.delete(b"k")
        assert db.get(b"k") is None
        assert b"k" not in db

    def test_overwrite(self):
        db = DB()
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"

    def test_write_batch_atomic_ordering(self):
        db = DB()
        batch = WriteBatch().put(b"a", b"1").delete(b"a").put(b"b", b"2")
        db.write(batch)
        assert db.get(b"a") is None
        assert db.get(b"b") == b"2"

    def test_write_requires_batch(self):
        with pytest.raises(TypeError):
            DB().write([("put", b"a", b"1")])

    def test_flush_preserves_reads(self):
        db = DB(DBOptions(memtable_flush_entries=10))
        for i in range(25):
            db.put(b"k%02d" % i, b"v%02d" % i)
        assert db.flushes >= 2
        for i in range(25):
            assert db.get(b"k%02d" % i) == b"v%02d" % i

    def test_delete_masks_flushed_value(self):
        db = DB(DBOptions(memtable_flush_entries=4))
        db.put(b"k", b"v")
        for i in range(6):  # force flush carrying b"k" into a table
            db.put(b"fill%d" % i, b"x")
        db.delete(b"k")
        assert db.get(b"k") is None

    def test_compaction_bounds_table_count(self):
        options = DBOptions(memtable_flush_entries=4,
                            max_tables_before_compaction=2)
        db = DB(options)
        for i in range(80):
            db.put(b"k%03d" % i, b"v")
        assert db.compactions >= 1
        assert db.table_count <= 2
        assert db.count() == 80

    def test_scan_range_and_limit(self):
        db = DB()
        for i in range(10):
            db.put(b"k%02d" % i, b"v%02d" % i)
        rows = db.scan(b"k03", b"k07")
        assert [k for k, _v in rows] == [b"k03", b"k04", b"k05", b"k06"]
        assert len(db.scan(limit=3)) == 3

    def test_scan_merges_memtable_over_tables(self):
        db = DB(DBOptions(memtable_flush_entries=4))
        for i in range(5):  # flush happens
            db.put(b"k%d" % i, b"old")
        db.put(b"k0", b"new")
        rows = dict(db.scan())
        assert rows[b"k0"] == b"new"

    def test_lock_depth_tracks_mutex(self):
        db = DB()
        assert db.lock_depth == 0
        db.put(b"k", b"v")  # acquires and releases
        assert db.lock_depth == 0

    def test_stats_shape(self):
        db = DB()
        db.put(b"k", b"v")
        stats = db.stats()
        assert stats["memtable_entries"] == 1
        assert stats["sequence"] == 2

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "delete"]),
                st.integers(min_value=0, max_value=30),
            ),
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=50)
    def test_matches_dict_model_through_flushes(self, ops):
        db = DB(DBOptions(memtable_flush_entries=8,
                          max_tables_before_compaction=2))
        model = {}
        for op, i in ops:
            key = b"k%02d" % i
            if op == "put":
                db.put(key, b"v%02d" % i)
                model[key] = b"v%02d" % i
            else:
                db.delete(key)
                model.pop(key, None)
        for i in range(31):
            key = b"k%02d" % i
            assert db.get(key) == model.get(key)
        assert db.scan() == sorted(model.items())


class TestCostModel:
    def test_reference_sizes_match_paper(self):
        model = LevelDBCostModel(15_000)
        assert model.get_us() == pytest.approx(LEVELDB_GET_US)
        assert model.scan_us() == pytest.approx(LEVELDB_SCAN_US)

    def test_scan_scales_linearly(self):
        small = LevelDBCostModel(1_500)
        assert small.scan_us() == pytest.approx(LEVELDB_SCAN_US / 10)

    def test_get_scales_logarithmically(self):
        big = LevelDBCostModel(15_000 ** 2)
        assert big.get_us() == pytest.approx(2 * LEVELDB_GET_US, rel=0.01)

    def test_partial_scan(self):
        model = LevelDBCostModel(15_000)
        assert model.scan_us(0.5) == pytest.approx(LEVELDB_SCAN_US / 2)
        with pytest.raises(ValueError):
            model.scan_us(0.0)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            LevelDBCostModel().service_us("DROP")

    def test_leveldb_workload_builder(self):
        workload = leveldb_workload({"GET": 0.5, "SCAN": 0.5})
        assert workload.class_probabilities() == {"GET": 0.5, "SCAN": 0.5}
        assert workload.mean_us() == pytest.approx(
            (LEVELDB_GET_US + LEVELDB_SCAN_US) / 2
        )


class TestLevelDBApp:
    def make_app(self, num_keys=50):
        app = LevelDBApp(num_keys=num_keys)
        app.setup()
        return app

    def test_setup_populates_keys(self):
        app = self.make_app(40)
        assert app.db.count() == 40

    def test_handle_get(self):
        app = self.make_app()
        response = app.handle_request({"op": "GET", "key": app.key_for(7)})
        assert response["value"] == b"value-7"

    def test_handle_put_delete_scan(self):
        app = self.make_app(10)
        app.handle_request({"op": "PUT", "key": b"zz", "value": b"new"})
        assert app.db.get(b"zz") == b"new"
        app.handle_request({"op": "DELETE", "key": b"zz"})
        assert app.db.get(b"zz") is None
        response = app.handle_request({"op": "SCAN"})
        assert len(response["rows"]) == 10

    def test_unknown_op(self):
        with pytest.raises(KeyError):
            self.make_app(1).handle_request({"op": "TRUNCATE"})

    def test_safety_models_differ_in_scan_deferral(self):
        from repro.hardware import CycleClock

        clock = CycleClock()
        rng = random.Random(0)
        concord = concord_lock_counter_safety()
        shinjuku = shinjuku_api_window_safety()
        # SCANs: Concord never defers (lock-free snapshot); Shinjuku defers
        # within an iterator segment.
        assert all(
            concord.defer_cycles("SCAN", clock, rng) == 0 for _ in range(100)
        )
        assert any(
            shinjuku.defer_cycles("SCAN", clock, rng) > 0 for _ in range(100)
        )


class TestScanEdgeCases:
    def test_inverted_range_is_empty(self):
        db = DB()
        db.put(b"a", b"1")
        db.put(b"z", b"2")
        assert db.scan(b"z", b"a") == []

    def test_scan_excludes_end_key(self):
        db = DB()
        for key in (b"a", b"b", b"c"):
            db.put(key, key)
        assert [k for k, _v in db.scan(b"a", b"c")] == [b"a", b"b"]

    def test_scan_limit_zero(self):
        db = DB()
        db.put(b"a", b"1")
        assert db.scan(limit=0) == []

    def test_scan_after_compaction_sees_latest(self):
        options = DBOptions(memtable_flush_entries=4,
                            max_tables_before_compaction=1)
        db = DB(options)
        for i in range(20):
            db.put(b"k", b"v%02d" % i)
            db.put(b"fill%02d" % i, b"x")
        rows = dict(db.scan())
        assert rows[b"k"] == b"v19"
