"""Unit + property tests for the skiplist, memtable, and sorted tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.memtable import MemTable, ValueKind
from repro.kvstore.skiplist import SkipList
from repro.kvstore.table import SortedTable


class TestSkipList:
    def test_insert_and_get(self):
        sl = SkipList()
        sl.insert(b"b", 2)
        sl.insert(b"a", 1)
        assert sl.get(b"a") == 1
        assert sl.get(b"b") == 2
        assert sl.get(b"c") is None
        assert sl.get(b"c", default=-1) == -1

    def test_overwrite_updates_in_place(self):
        sl = SkipList()
        sl.insert(b"k", 1)
        sl.insert(b"k", 2)
        assert sl.get(b"k") == 2
        assert len(sl) == 1

    def test_iteration_is_sorted(self):
        sl = SkipList()
        for key in (b"d", b"a", b"c", b"b"):
            sl.insert(key, key)
        assert [k for k, _v in sl] == [b"a", b"b", b"c", b"d"]

    def test_iterate_from_midpoint(self):
        sl = SkipList()
        for i in range(10):
            sl.insert(("k%02d" % i).encode(), i)
        keys = [k for k, _v in sl.iterate_from(b"k05")]
        assert keys[0] == b"k05"
        assert len(keys) == 5

    def test_contains(self):
        sl = SkipList()
        sl.insert(b"x", 1)
        assert b"x" in sl
        assert b"y" not in sl

    def test_first_key(self):
        sl = SkipList()
        assert sl.first_key() is None
        sl.insert(b"m", 1)
        sl.insert(b"a", 1)
        assert sl.first_key() == b"a"

    @given(
        keys=st.lists(st.binary(min_size=1, max_size=8), min_size=1,
                      max_size=200)
    )
    @settings(max_examples=60)
    def test_behaves_like_dict(self, keys):
        sl = SkipList()
        model = {}
        for i, key in enumerate(keys):
            sl.insert(key, i)
            model[key] = i
        assert len(sl) == len(model)
        for key, expected in model.items():
            assert sl.get(key) == expected
        assert [k for k, _v in sl] == sorted(model)


class TestMemTable:
    def test_latest_version_wins(self):
        mt = MemTable()
        mt.add(1, ValueKind.VALUE, b"k", b"old")
        mt.add(2, ValueKind.VALUE, b"k", b"new")
        found, value = mt.get(b"k")
        assert found and value == b"new"

    def test_tombstone_masks_value(self):
        mt = MemTable()
        mt.add(1, ValueKind.VALUE, b"k", b"v")
        mt.add(2, ValueKind.DELETION, b"k")
        found, value = mt.get(b"k")
        assert found and value is None

    def test_missing_key(self):
        mt = MemTable()
        found, _value = mt.get(b"nope")
        assert not found

    def test_snapshot_read_at_sequence(self):
        mt = MemTable()
        mt.add(1, ValueKind.VALUE, b"k", b"v1")
        mt.add(5, ValueKind.VALUE, b"k", b"v5")
        found, value = mt.get(b"k", sequence=3)
        assert found and value == b"v1"

    def test_iter_latest_collapses_versions(self):
        mt = MemTable()
        mt.add(1, ValueKind.VALUE, b"a", b"1")
        mt.add(2, ValueKind.VALUE, b"a", b"2")
        mt.add(3, ValueKind.VALUE, b"b", b"3")
        latest = list(mt.iter_latest())
        assert latest == [
            (b"a", ValueKind.VALUE, b"2"),
            (b"b", ValueKind.VALUE, b"3"),
        ]

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            MemTable().add(1, 7, b"k", b"v")


class TestSortedTable:
    def test_from_memtable_and_get(self):
        mt = MemTable()
        mt.add(1, ValueKind.VALUE, b"a", b"1")
        mt.add(2, ValueKind.DELETION, b"b")
        table = SortedTable.from_memtable(mt)
        assert table.get(b"a") == (True, b"1")
        assert table.get(b"b") == (True, None)  # tombstone retained
        assert table.get(b"c") == (False, None)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            SortedTable([(b"b", ValueKind.VALUE, b"1"),
                         (b"a", ValueKind.VALUE, b"2")])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            SortedTable([(b"a", ValueKind.VALUE, b"1"),
                         (b"a", ValueKind.VALUE, b"2")])

    def test_iterate_from(self):
        table = SortedTable([
            (b"a", ValueKind.VALUE, b"1"),
            (b"c", ValueKind.VALUE, b"3"),
            (b"e", ValueKind.VALUE, b"5"),
        ])
        assert [k for k, _kd, _v in table.iterate_from(b"b")] == [b"c", b"e"]

    def test_key_range(self):
        table = SortedTable([(b"a", ValueKind.VALUE, b"1"),
                             (b"z", ValueKind.VALUE, b"2")])
        assert table.key_range() == (b"a", b"z")
        assert SortedTable([]).key_range() == (None, None)

    def test_merge_drops_tombstones_and_shadowed(self):
        newer = SortedTable([
            (b"a", ValueKind.DELETION, None),
            (b"b", ValueKind.VALUE, b"new"),
        ])
        older = SortedTable([
            (b"a", ValueKind.VALUE, b"stale"),
            (b"b", ValueKind.VALUE, b"old"),
            (b"c", ValueKind.VALUE, b"keep"),
        ])
        merged = SortedTable.merge([newer, older])
        assert merged.get(b"a") == (False, None)  # tombstone dropped entirely
        assert merged.get(b"b") == (True, b"new")
        assert merged.get(b"c") == (True, b"keep")
