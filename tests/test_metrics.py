"""Tests for percentiles, histograms, slowdown summaries, and sweeps."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    Histogram,
    format_table,
    knee_load,
    percentile,
    summarize_slowdowns,
)
from repro.metrics.sweep import SweepPoint


class TestPercentile:
    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_presorted_flag(self):
        data = sorted([3, 1, 2])
        assert percentile(data, 50, presorted=True) == 2

    def test_single_value(self):
        assert percentile([7], 99.9) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(
        values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                        max_size=200),
        p=st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=100)
    def test_percentile_within_data_range(self, values, p):
        result = percentile(values, p)
        assert min(values) <= result <= max(values)

    def test_matches_numpy_linear(self):
        import numpy as np

        r = random.Random(0)
        data = [r.expovariate(1.0) for _ in range(500)]
        for p in (50, 90, 99, 99.9):
            assert percentile(data, p) == pytest.approx(
                float(np.percentile(data, p))
            )


class TestHistogram:
    def test_quantiles_approximate_exact(self):
        r = random.Random(1)
        data = [r.lognormvariate(0, 1) for _ in range(20000)]
        hist = Histogram()
        hist.extend(data)
        exact = percentile(data, 99)
        assert hist.percentile(99) == pytest.approx(exact, rel=0.05)

    def test_mean_and_extrema(self):
        hist = Histogram()
        hist.extend([1.0, 2.0, 3.0])
        assert hist.mean == pytest.approx(2.0)
        assert hist.max_value == 3.0
        assert hist.min_value == 1.0
        assert hist.count == 3

    def test_q1_returns_max(self):
        hist = Histogram()
        hist.extend([1.0, 5.0])
        assert hist.quantile(1.0) == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram().add(-1)

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            Histogram().quantile(0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Histogram(least=0)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)


class TestSlowdownSummary:
    def test_summary_fields(self):
        summary = summarize_slowdowns([1.0] * 99 + [100.0])
        assert summary.count == 100
        assert summary.max == 100.0
        assert summary.p50 == 1.0
        assert summary.mean == pytest.approx(1.99)

    def test_meets_slo(self):
        good = summarize_slowdowns([1.0] * 1000)
        assert good.meets_slo()
        bad = summarize_slowdowns([60.0] * 1000)
        assert not bad.meets_slo(slo=50.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_slowdowns([])

    def test_as_dict_keys(self):
        summary = summarize_slowdowns([1.0, 2.0])
        assert set(summary.as_dict()) == {
            "count", "mean", "p50", "p90", "p99", "p999", "max",
        }


def make_point(load, p999):
    return SweepPoint(
        load_rps=load, p50=1.0, p99=2.0, p999=p999, mean=1.0,
        throughput_rps=load, dispatcher_utilization=0.5,
        worker_idle_fraction=0.1, steals=0, completed=1000,
    )


class TestKneeLoad:
    def test_interpolates_crossing(self):
        points = [make_point(100, 10.0), make_point(200, 90.0)]
        # Crosses 50 at exactly halfway between 100 and 200.
        assert knee_load(points, slo=50.0) == pytest.approx(150.0)

    def test_all_under_slo_returns_max_load(self):
        points = [make_point(100, 5.0), make_point(200, 20.0)]
        assert knee_load(points, slo=50.0) == 200

    def test_all_over_slo_returns_zero(self):
        points = [make_point(100, 80.0)]
        assert knee_load(points, slo=50.0) == 0.0

    def test_unsorted_points_accepted(self):
        points = [make_point(200, 90.0), make_point(100, 10.0)]
        assert knee_load(points, slo=50.0) == pytest.approx(150.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            knee_load([])


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(
            ["load", "p999"], [[100, 1.5], [2000, 22.25]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "load" in lines[1] and "p999" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_nan_rendering(self):
        text = format_table(["x"], [[float("nan")]])
        assert "nan" in text
