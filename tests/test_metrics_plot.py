"""Tests for ASCII plotting."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.plotting import result_chart
from repro.metrics.plot import ascii_plot


class TestAsciiPlot:
    def test_renders_markers_and_legend(self):
        chart = ascii_plot(
            {"a": [(0, 1), (1, 2)], "b": [(0, 2), (1, 1)]},
            width=20, height=6, title="demo",
        )
        assert "demo" in chart
        assert "o a" in chart
        assert "x b" in chart
        assert "o" in chart.splitlines()[2] + chart.splitlines()[-4]

    def test_log_scale_compresses_explosions(self):
        chart = ascii_plot(
            {"tail": [(0, 1), (1, 10), (2, 10000)]}, log_y=True,
            width=12, height=5,
        )
        assert "10^" in chart

    def test_single_point_does_not_crash(self):
        chart = ascii_plot({"p": [(5, 5)]}, width=10, height=4)
        assert "o p" in chart

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": []})


class TestResultChart:
    def test_numeric_table_charts(self):
        result = ExperimentResult(
            "figX", "demo", headers=["load", "sysA", "sysB"],
            rows=[[1, 2.0, 3.0], [2, 4.0, 2.0]],
        )
        chart = result_chart(result)
        assert chart is not None
        assert "sysA" in chart and "sysB" in chart

    def test_non_numeric_rows_skipped(self):
        result = ExperimentResult(
            "table1", "demo", headers=["program", "overhead"],
            rows=[["radix", 1.0]],
        )
        assert result_chart(result) is None

    def test_string_columns_excluded(self):
        result = ExperimentResult(
            "figY", "demo", headers=["x", "name", "value"],
            rows=[[1, "a", 2.0], [2, "b", 3.0]],
        )
        chart = result_chart(result)
        assert chart is not None
        assert "value" in chart
        assert " name" not in chart.splitlines()[-1]

    def test_empty_result(self):
        result = ExperimentResult("z", "demo", headers=["x"], rows=[])
        assert result_chart(result) is None
