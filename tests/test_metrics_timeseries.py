"""Edge-case tests for repro.metrics.timeseries and pooled percentiles.

Pins behaviour the figure pipelines rely on but the main metrics tests
never exercised: empty series, a single sample, duplicate completion
timestamps landing in one window, and percentile merges over pooled
inputs of unequal length (how :class:`~repro.cluster.rack.ClusterResult`
computes rack-wide tails from per-server record lists).
"""

import pytest

from repro.hardware import c6420
from repro.metrics.percentile import percentile
from repro.metrics.timeseries import TimeSeries

CLOCK = c6420(1).clock


class FakeRecord:
    """The minimal record shape TimeSeries consumes."""

    def __init__(self, completion_cycle, slowdown=1.0):
        self.completion_cycle = completion_cycle
        self._slowdown = slowdown

    def slowdown(self):
        return self._slowdown


class FakeResult:
    def __init__(self, records):
        self.clock = CLOCK
        self.records = records


class TestTimeSeriesEdgeCases:
    def test_empty_series(self):
        series = TimeSeries(window_us=100.0, clock=CLOCK)
        assert len(series) == 0
        assert list(series.windows()) == []
        assert series.throughput_series() == []
        assert series.tail_slowdown_series() == []
        assert series.peak_to_mean_throughput() == 0.0

    def test_single_sample(self):
        series = TimeSeries(window_us=100.0, clock=CLOCK)
        series.add(FakeRecord(CLOCK.us_to_cycles(250.0), slowdown=3.0))
        ((start, records),) = series.windows()
        assert start == 200.0  # third 100us window
        assert len(records) == 1
        ((_t, throughput),) = series.throughput_series()
        assert throughput == pytest.approx(1e6 / 100.0)  # 1 per 100us
        ((_t, tail),) = series.tail_slowdown_series(p=99.0)
        assert tail == 3.0
        assert series.peak_to_mean_throughput() == pytest.approx(1.0)

    def test_duplicate_timestamps_share_a_bucket(self):
        series = TimeSeries(window_us=50.0, clock=CLOCK)
        cycle = CLOCK.us_to_cycles(75.0)
        for slowdown in (1.0, 2.0, 9.0):
            series.add(FakeRecord(cycle, slowdown=slowdown))
        assert len(series) == 1
        ((start, records),) = series.windows()
        assert start == 50.0
        assert len(records) == 3
        ((_t, tail),) = series.tail_slowdown_series(p=100.0)
        assert tail == 9.0

    def test_windows_yield_in_time_order(self):
        series = TimeSeries(window_us=10.0, clock=CLOCK)
        for us in (95.0, 5.0, 45.0):
            series.add(FakeRecord(CLOCK.us_to_cycles(us)))
        starts = [start for start, _records in series.windows()]
        assert starts == [0.0, 40.0, 90.0]

    def test_from_result_matches_manual_adds(self):
        records = [FakeRecord(CLOCK.us_to_cycles(us)) for us in (5.0, 15.0)]
        series = TimeSeries.from_result(FakeResult(records), window_us=10.0)
        assert len(series) == 2

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            TimeSeries(window_us=0, clock=CLOCK)
        with pytest.raises(ValueError):
            TimeSeries(window_us=-5.0, clock=CLOCK)


class TestPooledPercentileMerge:
    """Rack-wide tails pool per-server slowdown lists of unequal length;
    the percentile of the pool is NOT any average of per-list percentiles."""

    def test_merge_of_unequal_length_inputs(self):
        short = [1.0, 2.0]
        long = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0]
        pooled = sorted(short + long)
        assert percentile(short + long, 50) == percentile(pooled, 50,
                                                          presorted=True)
        # The pool's median sits inside the longer input's range...
        assert percentile(short + long, 50) == pytest.approx(35.0)
        # ...which no averaging of the two per-list medians reproduces.
        averaged = (percentile(short, 50) + percentile(long, 50)) / 2.0
        assert percentile(short + long, 50) != pytest.approx(averaged)

    def test_merge_with_one_empty_input(self):
        values = [3.0, 1.0, 2.0]
        assert percentile([] + values, 50) == 2.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_merge_order_is_irrelevant(self):
        a = [5.0, 1.0, 9.0]
        b = [2.0, 2.0, 7.0, 11.0]
        for p in (0, 25, 50, 90, 99.9, 100):
            assert percentile(a + b, p) == percentile(b + a, p)

    def test_pool_matches_cluster_result_merge(self):
        """ClusterResult-style pooling equals a flat percentile over all
        per-server slowdowns."""
        per_server = [
            [1.0, 4.0, 2.5],
            [8.0],
            [3.0, 3.0, 3.0, 12.0, 0.5],
        ]
        flat = [v for server in per_server for v in server]
        assert percentile(flat, 99) == percentile(
            sorted(flat), 99, presorted=True
        )
        assert max(flat) == percentile(flat, 100)
