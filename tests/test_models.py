"""Tests for the analytical overhead model (Eqs. 1-4) and queueing forms."""

import pytest

from repro.core.preemption import (
    CacheLineCooperation,
    PostedIPI,
    RdtscSelfPreemption,
)
from repro.hardware import CycleClock
from repro.models.overhead import (
    mechanism_overhead_curve,
    preemption_notification_overhead,
    system_overhead,
    worker_overhead,
)
from repro.models.queueing import (
    mg1_mean_wait,
    mm1_mean_sojourn,
    mmk_erlang_c,
    mmk_mean_wait,
)

CLOCK = CycleClock()


class TestWorkerOverhead:
    def test_no_preemption_only_cfin_and_cproc(self):
        breakdown = worker_overhead(
            10_000, None, cnotif=100, cswitch=50, cnext=400, proc_fraction=0.01
        )
        assert breakdown.cpre == 0
        assert breakdown.cfin == 450
        assert breakdown.cproc == pytest.approx(100.0)

    def test_preemption_count_floor(self):
        # 500us service, 100us quantum -> floor(5) but the 5th boundary is
        # the completion, so 4 preemptions.
        breakdown = worker_overhead(500, 100, cnotif=10, cswitch=0, cnext=0)
        assert breakdown.cpre == 4 * 10

    def test_non_multiple_service(self):
        breakdown = worker_overhead(550, 100, cnotif=10, cswitch=0, cnext=0)
        assert breakdown.cpre == 5 * 10

    def test_overhead_fraction(self):
        breakdown = worker_overhead(
            1000, None, cnotif=0, cswitch=100, cnext=100, proc_fraction=0.0
        )
        assert breakdown.worker_overhead == pytest.approx(0.2)

    def test_rejects_bad_service(self):
        with pytest.raises(ValueError):
            worker_overhead(0, None, 0, 0, 0)


class TestSystemOverhead:
    def test_dedicated_dispatcher_small_vm(self):
        # Section 2.2.3's example: 4 vCPUs, dispatcher 80% idle ->
        # the dedicated dispatcher alone wastes 1/4 of the machine.
        overhead = system_overhead(3, 0.0, dispatcher_overhead=1.0)
        assert overhead == pytest.approx(0.25)

    def test_work_conserving_dispatcher_lowers_overhead(self):
        dedicated = system_overhead(3, 0.1, dispatcher_overhead=1.0)
        conserving = system_overhead(3, 0.1, dispatcher_overhead=0.6)
        assert conserving < dedicated

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            system_overhead(0, 0.1)


class TestFig2Model:
    """The analytical form of Fig. 2's three curves."""

    def test_ipi_overhead_matches_measured_points(self):
        ipi = PostedIPI()
        at_2us = preemption_notification_overhead(ipi, 2.0, CLOCK)
        at_10us = preemption_notification_overhead(ipi, 10.0, CLOCK)
        # Paper: ~33% at 2us, ~6% at 10us.
        assert at_2us == pytest.approx(0.33, abs=0.05)
        assert at_10us == pytest.approx(0.06, abs=0.02)

    def test_rdtsc_overhead_flat_21_percent(self):
        rdtsc = RdtscSelfPreemption()
        curve = mechanism_overhead_curve(rdtsc, [1, 5, 10, 25, 50, 100], CLOCK)
        assert all(c == pytest.approx(21.0, abs=1.5) for c in curve)

    def test_concord_overhead_flat_and_low(self):
        concord = CacheLineCooperation()
        curve = mechanism_overhead_curve(concord, [1, 5, 10, 25, 50, 100], CLOCK)
        assert all(c < 8.0 for c in curve)
        assert curve[1] < 3.0  # ~1-2% at 5us

    def test_ipi_and_concord_converge_at_large_quanta(self):
        # Section 3.1: the two mechanisms become roughly equal for large
        # quanta (the paper says around 25us; our cost model closes the gap
        # to under ~1.5 points there and keeps shrinking).
        ipi = PostedIPI()
        concord = CacheLineCooperation()

        def gap(quantum):
            return abs(
                preemption_notification_overhead(ipi, quantum, CLOCK)
                - preemption_notification_overhead(concord, quantum, CLOCK)
            )

        assert gap(25.0) < 0.015
        assert gap(100.0) < 0.012
        assert gap(25.0) > gap(100.0) or gap(100.0) < 0.005
        # And IPIs are >10x worse at a 2us quantum (section 3.1: "12x lower").
        assert preemption_notification_overhead(
            ipi, 2.0, CLOCK
        ) > 10 * preemption_notification_overhead(concord, 2.0, CLOCK)


class TestQueueingForms:
    def test_mm1_sojourn(self):
        assert mm1_mean_sojourn(0.5, 1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            mm1_mean_sojourn(1.0, 1.0)

    def test_erlang_c_single_server_equals_rho(self):
        assert mmk_erlang_c(0.6, 1.0, 1) == pytest.approx(0.6)

    def test_mmk_wait_decreases_with_servers(self):
        one = mmk_mean_wait(0.9, 1.0, 1)
        many = mmk_mean_wait(0.9 * 4, 1.0, 8)
        assert many < one

    def test_mmk_unstable_raises(self):
        with pytest.raises(ValueError):
            mmk_mean_wait(2.0, 1.0, 1)

    def test_mg1_deterministic_halves_mm1_wait(self):
        mm1 = mg1_mean_wait(0.5, 1.0, scv=1.0)
        md1 = mg1_mean_wait(0.5, 1.0, scv=0.0)
        assert md1 == pytest.approx(mm1 / 2)

    def test_mg1_unstable_raises(self):
        with pytest.raises(ValueError):
            mg1_mean_wait(1.5, 1.0, 1.0)
