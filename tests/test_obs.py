"""Tests for the observability layer (repro.obs).

Covers the acceptance criteria of the observability PR:

* unit behaviour of the probe-event vocabulary, telemetry registry,
  flight recorder, trace sessions, span reconstruction, and exporters;
* the **differential** guarantee — identical seeds yield bit-identical
  ``SimResult`` / ``ClusterResult`` with tracing disabled, fully enabled,
  and flight-recorder-only;
* the CLI surface: ``concord-repro trace`` writes a schema-valid Chrome
  trace and a tail report naming concrete request ids, and ``--trace``
  on compare works end-to-end;
* runner job telemetry feeding the sweep summary footer.
"""

import io
import json

import pytest

from repro.core import concord
from repro.hardware import c6420
from repro.obs import (
    FlightRecorder,
    ProbeBus,
    ProbeEvent,
    TelemetryRegistry,
    TraceConfig,
    TraceSession,
    active_session,
    build_spans,
    chrome_trace,
    tail_report,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs import events as ev
from repro.workloads import PoissonProcess, bimodal_50_1_50_100

SEED = 11
WORKERS = 4
QUANTUM_US = 5.0
NUM_REQUESTS = 1200


@pytest.fixture(autouse=True)
def no_session_leak():
    """Every test must leave the ambient trace session cleared."""
    assert active_session() is None
    yield
    assert active_session() is None


def run_server(config=None, seed=SEED, num_requests=NUM_REQUESTS,
               load_frac=0.7, until_us=None):
    from repro.core.server import Server

    workload = bimodal_50_1_50_100()
    machine = c6420(WORKERS)
    server = Server(machine, config or concord(QUANTUM_US), seed=seed)
    load = load_frac * machine.num_workers * 1e6 / workload.mean_us()
    kwargs = {} if until_us is None else {"until_us": until_us}
    return server.run(workload, PoissonProcess(load), num_requests, **kwargs)


def record_key(record):
    """Every observable field of one completed request."""
    return (
        record.rid, record.kind, record.arrival_cycle,
        record.completion_cycle, record.remaining_cycles,
        record.preemptions, record.migrations, record.last_worker,
        record.started_by_dispatcher,
    )


def result_fingerprint(result):
    return tuple(record_key(r) for r in result.records)


# -- events ------------------------------------------------------------------


class TestProbeEvent:
    def test_key_equality_and_hash(self):
        a = ProbeEvent(5, ev.START, rid=1, wid=2, data={"x": 1, "y": 2})
        b = ProbeEvent(5, ev.START, rid=1, wid=2, data={"y": 2, "x": 1})
        c = ProbeEvent(6, ev.START, rid=1, wid=2, data={"x": 1, "y": 2})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_to_dict_omits_missing_fields(self):
        event = ProbeEvent(3, ev.WORKER_IDLE, wid=0)
        assert event.to_dict() == {"t": 3, "kind": "worker-idle", "wid": 0}
        full = ProbeEvent(4, ev.ARRIVAL, rid=7,
                          data={"request_kind": "short"})
        assert full.to_dict() == {
            "t": 4, "kind": "arrival", "rid": 7, "request_kind": "short",
        }

    def test_lifecycle_kinds_subset_of_all(self):
        assert set(ev.REQUEST_LIFECYCLE_KINDS) < set(ev.EVENT_KINDS)
        assert len(set(ev.EVENT_KINDS)) == len(ev.EVENT_KINDS)


# -- registry ----------------------------------------------------------------


class TestTelemetryRegistry:
    def test_get_or_create_is_stable(self):
        registry = TelemetryRegistry()
        counter = registry.counter("a")
        assert registry.counter("a") is counter
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.time_series("s") is registry.time_series("s")

    def test_convenience_writers(self):
        registry = TelemetryRegistry()
        registry.count("hits")
        registry.count("hits", 4)
        registry.record("heap", 17)
        registry.sample("depth", 100, 3)
        registry.sample("depth", 200, 1)
        snap = registry.snapshot()
        assert snap["counters"] == {"hits": 5}
        assert snap["gauges"] == {"heap": 17}
        assert snap["series"] == {"depth": [[100, 3], [200, 1]]}

    def test_merge_counts_sums_counters_only(self):
        a, b = TelemetryRegistry(), TelemetryRegistry()
        a.count("x", 2)
        b.count("x", 3)
        b.count("y")
        b.record("gauge", 9)
        a.merge_counts(b)
        assert a.snapshot()["counters"] == {"x": 5, "y": 1}
        assert a.snapshot()["gauges"] == {}

    def test_snapshot_preserves_insertion_order(self):
        registry = TelemetryRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.count(name)
        assert list(registry.snapshot()["counters"]) == ["zeta", "alpha", "mid"]


# -- flight recorder ---------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded_and_ordered(self):
        recorder = FlightRecorder(capacity=3)
        for t in range(6):
            recorder.record(ProbeEvent(t, ev.SIM, data={"name": "e"}))
        tail = recorder.tail()
        assert [e.t for e in tail] == [3, 4, 5]
        assert len(recorder) == 3
        assert recorder.events_seen == 6

    def test_trigger_threshold(self):
        recorder = FlightRecorder(capacity=4, slowdown_trigger=10.0)
        recorder.record(ProbeEvent(1, ev.ARRIVAL, rid=1))
        assert not recorder.maybe_trigger(5, 1, 9.99)
        assert recorder.maybe_trigger(5, 1, 10.0)
        assert recorder.triggers_fired == 1
        capture = recorder.captures[0]
        assert capture["rid"] == 1 and capture["slowdown"] == 10.0
        assert [e.t for e in capture["events"]] == [1]

    def test_capture_is_a_snapshot(self):
        recorder = FlightRecorder(capacity=2, slowdown_trigger=1.0)
        recorder.record(ProbeEvent(1, ev.ARRIVAL, rid=1))
        recorder.maybe_trigger(2, 1, 5.0)
        recorder.record(ProbeEvent(3, ev.ARRIVAL, rid=2))
        recorder.record(ProbeEvent(4, ev.ARRIVAL, rid=3))
        assert [e.t for e in recorder.captures[0]["events"]] == [1]

    def test_max_captures_bounds_memory_not_counting(self):
        recorder = FlightRecorder(capacity=2, slowdown_trigger=1.0,
                                  max_captures=2)
        for rid in range(5):
            assert recorder.maybe_trigger(rid, rid, 2.0)
        assert recorder.triggers_fired == 5
        assert len(recorder.captures) == 2

    def test_none_trigger_disables(self):
        recorder = FlightRecorder(capacity=2, slowdown_trigger=None)
        assert not recorder.maybe_trigger(1, 1, 1e9)
        assert recorder.captures == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# -- sessions ----------------------------------------------------------------


class TestTraceSession:
    def test_full_and_flight_only_presets(self):
        full = TraceConfig.full()
        assert full.record_events and full.flight_capacity > 0
        assert full.sample_interval_us > 0
        flight = TraceConfig.flight_only(capacity=64)
        assert not flight.record_events
        assert flight.flight_capacity == 64

    def test_make_bus_deduplicates_labels(self):
        session = TraceSession(TraceConfig())
        labels = [session.make_bus("concord").label for _ in range(3)]
        assert labels == ["concord", "concord#1", "concord#2"]

    def test_max_recorded_runs_caps_event_logs(self):
        session = TraceSession(TraceConfig(max_recorded_runs=2))
        buses = [session.make_bus("b") for _ in range(4)]
        assert [bus.record_events for bus in buses] == [
            True, True, False, False,
        ]

    def test_sample_interval_converted_with_clock(self):
        clock = c6420(1).clock
        session = TraceSession(TraceConfig(sample_interval_us=25.0))
        bus = session.make_bus("s", clock=clock)
        assert bus.sample_interval == clock.us_to_cycles(25.0)
        unclocked = session.make_bus("t")
        assert unclocked.sample_interval == 0

    def test_tracing_installs_and_clears_ambient_session(self):
        assert active_session() is None
        with tracing() as session:
            assert active_session() is session
            with pytest.raises(RuntimeError):
                with tracing():
                    pass
        assert active_session() is None

    def test_tracing_clears_session_on_error(self):
        with pytest.raises(KeyError):
            with tracing():
                raise KeyError("boom")
        assert active_session() is None

    def test_merged_counters_pools_buses_and_session_registry(self):
        session = TraceSession(TraceConfig())
        session.make_bus("a").registry.count("requests.completed", 2)
        session.make_bus("b").registry.count("requests.completed", 3)
        session.telemetry.count("runner.jobs_run", 1)
        merged = session.merged_counters().snapshot()["counters"]
        assert merged["requests.completed"] == 5
        assert merged["runner.jobs_run"] == 1


# -- span reconstruction -----------------------------------------------------


def lifecycle_events():
    """rid=1: arrival -> queue -> run -> preempt -> requeue -> run -> done."""
    return [
        ProbeEvent(10, ev.ARRIVAL, rid=1,
                   data={"request_kind": "long", "service_cycles": 100}),
        ProbeEvent(10, ev.ENQUEUE, rid=1),
        ProbeEvent(12, ev.DISPATCH, rid=1, wid=0),
        ProbeEvent(13, ev.START, rid=1, wid=0,
                   data={"run_start": 13, "resumed": False}),
        ProbeEvent(20, ev.PREEMPT, rid=1, wid=0, data={"preemptions": 1}),
        ProbeEvent(20, ev.ENQUEUE, rid=1, data={"requeued": True}),
        ProbeEvent(25, ev.START, rid=1, wid=2,
                   data={"run_start": 25, "resumed": True}),
        ProbeEvent(40, ev.COMPLETE, rid=1, wid=2,
                   data={"slowdown": 3.0, "preemptions": 1, "stolen": False}),
    ]


class TestBuildSpans:
    def test_full_lifecycle_folds_into_one_span(self):
        (span,) = build_spans(lifecycle_events())
        assert span.rid == 1
        assert span.kind == "long"
        assert span.arrival == 10
        assert span.queue_times == [10, 20]
        assert span.completion == 40
        assert span.slowdown == 3.0
        assert span.preemptions == 1
        assert not span.stolen and not span.dropped
        assert [(s.start, s.end, s.wid) for s in span.slices] == [
            (13, 20, 0), (25, 40, 2),
        ]
        assert span.start_cycle == 10 and span.end_cycle == 40

    def test_steal_slices_attach_to_dispatcher(self):
        events = [
            ProbeEvent(5, ev.STEAL, rid=9,
                       data={"exec_start": 6, "completes": 30}),
            ProbeEvent(15, ev.STEAL_PAUSE, rid=9),
            ProbeEvent(20, ev.STEAL, rid=9,
                       data={"exec_start": 20, "completes": 30}),
            ProbeEvent(30, ev.COMPLETE, rid=9,
                       data={"slowdown": 2.0, "preemptions": 0,
                             "stolen": True}),
        ]
        (span,) = build_spans(events)
        assert span.stolen
        assert [(s.start, s.end, s.stolen) for s in span.slices] == [
            (6, 15, True), (20, 30, True),
        ]

    def test_partial_ring_sequence_is_tolerated(self):
        # A flight-recorder ring that starts mid-life: no arrival, and the
        # final slice never closes.
        events = [
            ProbeEvent(50, ev.START, rid=3, wid=1,
                       data={"run_start": 50, "resumed": True}),
        ]
        (span,) = build_spans(events)
        assert span.arrival is None
        assert span.first_seen == 50
        assert span.start_cycle == 50
        assert span.slices[0].end is None
        assert span.end_cycle == 50

    def test_drop_marks_span(self):
        events = [
            ProbeEvent(1, ev.ARRIVAL, rid=2,
                       data={"request_kind": "short", "service_cycles": 10}),
            ProbeEvent(99, ev.DROP, rid=2, data={"remaining_cycles": 4}),
        ]
        (span,) = build_spans(events)
        assert span.dropped and span.completion is None

    def test_events_without_rid_are_skipped(self):
        events = [
            ProbeEvent(1, ev.ACTION, data={"name": "d-push", "cost": 10}),
            ProbeEvent(2, ev.WORKER_IDLE, wid=0),
        ]
        assert build_spans(events) == []

    def test_route_anchors_rack_spans(self):
        events = [ProbeEvent(4, ev.ROUTE, rid=1, data={"server": 2})]
        (span,) = build_spans(events)
        assert span.routed == 4 and span.start_cycle == 4


# -- exporters ---------------------------------------------------------------


class TestChromeExport:
    def traced_run(self):
        with tracing(TraceConfig.full()) as session:
            result = run_server(num_requests=400)
        return session, result

    def test_chrome_trace_is_schema_valid_and_complete(self, tmp_path):
        session, result = self.traced_run()
        (bus,) = session.buses
        payload = chrome_trace(session.buses, result.clock)
        count = validate_chrome_trace(payload)
        assert count == len(payload["traceEvents"]) > 0
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert phases == {"M", "X", "C"}
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {bus.label}
        # Round-trips through disk.
        out = tmp_path / "trace.json"
        write_chrome_trace(str(out), payload)
        loaded = json.loads(out.read_text())
        assert validate_chrome_trace(loaded) == count

    def test_worker_threads_are_named(self):
        session, result = self.traced_run()
        payload = chrome_trace(session.buses, result.clock)
        thread_names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "dispatcher" in thread_names
        assert any(n.startswith("worker-") for n in thread_names)

    def test_spans_jsonl_round_trip(self, tmp_path):
        session, _result = self.traced_run()
        spans = build_spans(session.buses[0].events)
        out = tmp_path / "spans.jsonl"
        write_spans_jsonl(str(out), spans)
        lines = out.read_text().splitlines()
        assert len(lines) == len(spans)
        first = json.loads(lines[0])
        assert {"rid", "slices", "slowdown", "queue_times"} <= set(first)

    def test_tail_report_names_real_requests(self):
        session, result = self.traced_run()
        spans = build_spans(session.buses[0].events)
        report = tail_report(spans, result.clock, k=3)
        assert "Top 3 tail requests" in report
        worst = max(
            (s for s in spans if s.slowdown is not None),
            key=lambda s: s.slowdown,
        )
        assert "rid={}".format(worst.rid) in report

    @pytest.mark.parametrize("payload, message", [
        ([], "JSON object"),
        ({"traceEvents": {}}, "must be a list"),
        ({"traceEvents": ["nope"]}, "not an object"),
        ({"traceEvents": [{"ph": "Q", "name": "x", "pid": 0}]}, "phase"),
        ({"traceEvents": [{"ph": "M", "pid": 0}]}, "name"),
        ({"traceEvents": [{"ph": "M", "name": "x"}]}, "pid"),
        ({"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0,
                           "ts": -1, "dur": 1}]}, "ts"),
        ({"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0,
                           "ts": 0, "dur": -2}]}, "dur"),
        ({"traceEvents": [{"ph": "X", "name": "x", "pid": 0,
                           "ts": 0, "dur": 1}]}, "tid"),
        ({"traceEvents": [{"ph": "C", "name": "x", "pid": 0, "ts": 0,
                           "args": {}}]}, "args"),
    ])
    def test_validator_rejects_malformed_payloads(self, payload, message):
        with pytest.raises(ValueError, match=message):
            validate_chrome_trace(payload)


# -- probe semantics on a real run ------------------------------------------


class TestInstrumentedRun:
    def test_counters_match_result(self):
        with tracing(TraceConfig.full()) as session:
            result = run_server(num_requests=600)
        (bus,) = session.buses
        counters = bus.registry.snapshot()["counters"]
        assert counters["requests.arrived"] == 600
        assert counters["requests.completed"] == len(result.records) == 600
        total_preemptions = sum(r.preemptions for r in result.records)
        assert counters.get("requests.preempted", 0) == total_preemptions

    def test_every_request_becomes_a_complete_span(self):
        with tracing(TraceConfig.full()) as session:
            result = run_server(num_requests=600)
        spans = {s.rid: s for s in build_spans(session.buses[0].events)}
        assert len(spans) == 600
        for record in result.records:
            span = spans[record.rid]
            assert span.arrival == record.arrival_cycle
            assert span.completion == record.completion_cycle
            assert span.preemptions == record.preemptions
            assert span.slowdown == pytest.approx(record.slowdown())
            assert span.slices, "completed request must have executed"

    def test_sampling_and_engine_gauges_present(self):
        with tracing(TraceConfig.full()) as session:
            run_server(num_requests=600)
        (bus,) = session.buses
        snap = bus.registry.snapshot()
        assert len(snap["series"]["server.inflight"]) > 0
        assert len(snap["series"]["worker.0.outstanding"]) > 0
        assert snap["gauges"]["engine.events_run"] > 0
        assert snap["gauges"]["dispatcher.busy_cycles"] > 0
        # Series are stamped with sim time, monotonically non-decreasing.
        stamps = [t for t, _v in bus.registry.series["server.inflight"].samples]
        assert stamps == sorted(stamps)

    def test_truncated_run_emits_drops(self):
        with tracing(TraceConfig.full()) as session:
            result = run_server(num_requests=4000, load_frac=1.4,
                                until_us=2000.0)
        (bus,) = session.buses
        counters = bus.registry.snapshot()["counters"]
        dropped = counters.get("requests.dropped", 0)
        assert dropped == counters["requests.arrived"] - len(result.records)
        assert dropped > 0
        spans = build_spans(bus.events)
        assert sum(1 for s in spans if s.dropped) == dropped

    def test_flight_only_records_no_event_log(self):
        with tracing(TraceConfig.flight_only(slowdown_trigger=1.0)) as session:
            run_server(num_requests=600)
        (bus,) = session.buses
        assert bus.events == []
        assert bus.recorder is not None
        assert bus.recorder.events_seen > 0
        assert bus.recorder.captures, "trigger at 1.0x must fire"

    def test_explicit_bus_wins_over_ambient_session(self):
        from repro.core.server import Server

        machine = c6420(2)
        explicit = ProbeBus("mine")
        server = Server(machine, concord(QUANTUM_US), seed=3,
                        probes=explicit)
        assert server.probes is explicit
        assert explicit.clock is machine.clock


# -- the differential guarantee ---------------------------------------------


class TestDifferentialServer:
    """Same seed => bit-identical SimResult regardless of tracing mode."""

    def run_mode(self, config):
        if config is None:
            return run_server()
        with tracing(config):
            return run_server()

    @pytest.mark.parametrize("config", [
        TraceConfig.full(),
        TraceConfig.flight_only(),
        TraceConfig(record_events=True, engine_events=True),
    ], ids=["full", "flight-only", "engine-events"])
    def test_traced_equals_untraced(self, config):
        bare = self.run_mode(None)
        traced = self.run_mode(config)
        assert result_fingerprint(bare) == result_fingerprint(traced)
        assert bare.duration_cycles() == traced.duration_cycles()
        assert bare.drained == traced.drained


class TestDifferentialCluster:
    """Same seed => bit-identical ClusterResult regardless of tracing."""

    def run_rack(self, config):
        from repro.cluster import Cluster

        workload = bimodal_50_1_50_100()
        machine = c6420(2)
        num_servers = 2
        load = 0.75 * num_servers * 2 * 1e6 / workload.mean_us()

        def go():
            cluster = Cluster(machine, concord(QUANTUM_US), num_servers,
                              policy="jsq", seed=SEED)
            return cluster.run(workload, PoissonProcess(load), 1500)

        if config is None:
            return go()
        with tracing(config):
            return go()

    @pytest.mark.parametrize("config", [
        TraceConfig.full(),
        TraceConfig.flight_only(),
    ], ids=["full", "flight-only"])
    def test_traced_equals_untraced(self, config):
        bare = self.run_rack(None)
        traced = self.run_rack(config)
        assert result_fingerprint(bare) == result_fingerprint(traced)
        assert bare.routed == traced.routed
        assert bare.replies == traced.replies
        assert bare.drained == traced.drained

    def test_rack_session_gets_per_server_and_balancer_buses(self):
        with tracing(TraceConfig.full()) as session:
            from repro.cluster import Cluster

            workload = bimodal_50_1_50_100()
            machine = c6420(2)
            cluster = Cluster(machine, concord(QUANTUM_US), 2,
                              policy="jsq", seed=SEED)
            load = 0.75 * 2 * 2 * 1e6 / workload.mean_us()
            cluster.run(workload, PoissonProcess(load), 800)
        labels = [bus.label for bus in session.buses]
        assert "balancer" in labels
        assert len(labels) == 3  # two servers + the balancer
        balancer_bus = session.buses[labels.index("balancer")]
        counters = balancer_bus.registry.snapshot()["counters"]
        assert counters["balancer.routed"] == 800
        assert counters["balancer.replies"] == 800


# -- runner telemetry --------------------------------------------------------


class TestRunnerTelemetry:
    def make_jobs(self, n=2):
        from repro.parallel import ServerJob

        workload = bimodal_50_1_50_100()
        machine = c6420(2)
        load = 0.5 * 2 * 1e6 / workload.mean_us()
        return [
            ServerJob(machine=machine, config=concord(QUANTUM_US),
                      workload=workload, load_rps=load, num_requests=200,
                      seed=seed)
            for seed in range(1, n + 1)
        ]

    def test_job_wall_times_land_in_telemetry(self):
        from repro.parallel import ParallelRunner

        runner = ParallelRunner(jobs=1, cache=None)
        runner.map(self.make_jobs(2))
        snap = runner.telemetry.snapshot()
        assert snap["counters"]["runner.jobs_run"] == 2
        samples = snap["series"]["runner.job_seconds"]
        assert len(samples) == 2
        assert all(seconds > 0 for _i, seconds in samples)
        line = runner.summary_line()
        assert "2 jobs simulated" in line and "no cache" in line

    def test_cache_hits_show_in_summary(self, tmp_path):
        from repro.parallel import ParallelRunner, ResultCache

        jobs = self.make_jobs(2)
        first = ParallelRunner(jobs=1, cache=ResultCache(str(tmp_path)))
        first.map(jobs)
        assert first.stats["cache_misses"] == 2
        second = ParallelRunner(jobs=1, cache=ResultCache(str(tmp_path)))
        second.map(jobs)
        snap = second.telemetry.snapshot()
        assert snap["counters"]["runner.cache_hits"] == 2
        assert "2 cache hits, 0 misses" in second.summary_line()


# -- CLI surface -------------------------------------------------------------


class TestTraceCLI:
    def main(self, argv):
        from repro.experiments.cli import main

        stream = io.StringIO()
        code = main(argv, stream=stream)
        return code, stream.getvalue()

    def test_trace_subcommand_full(self, tmp_path):
        out = tmp_path / "concord-trace.json"
        code, text = self.main([
            "trace", "concord", "--workers", "2", "--requests", "400",
            "--trace-out", str(out),
        ])
        assert code == 0
        assert out.exists()
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) > 0
        assert "Top" in text and "rid=" in text
        assert "[telemetry:" in text
        assert '"requests.completed": 400' in text

    def test_trace_subcommand_flight_recorder(self, tmp_path):
        code, text = self.main([
            "trace", "concord", "--workers", "2", "--requests", "400",
            "--flight-recorder", "--slowdown-trigger", "1.0",
            "--trace-out", str(tmp_path / "t.json"),
        ])
        assert code == 0
        assert "flight recorder saw" in text
        assert not (tmp_path / "t.json").exists()  # no full log recorded

    def test_trace_subcommand_unknown_target(self):
        code, _text = self.main(["trace", "no-such-thing"])
        assert code == 2

    def test_compare_with_trace_flag(self, tmp_path):
        out = tmp_path / "compare-trace.json"
        code, text = self.main([
            "compare", "--systems", "concord", "--workers", "2",
            "--requests", "400", "--trace-out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) > 0
        assert "[runner:" in text
