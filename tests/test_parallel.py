"""Tests for the parallel sweep executor and the result cache.

The load-bearing property is *bit-identical determinism*: fanning a sweep
out across processes (or serving it from the cache) must reproduce the
serial results exactly, not approximately.
"""

import enum
import pickle
import warnings
from dataclasses import dataclass

import pytest

from repro.core.config import RuntimeConfig
from repro.core.presets import concord, shinjuku
from repro.experiments.common import load_grid, sweep_systems
from repro.hardware import c6420
from repro.metrics.sweep import LoadSweep
from repro.parallel import (
    ParallelRunner,
    ResultCache,
    SimJob,
    UncacheableValue,
    get_default_runner,
    resolve_jobs,
    set_default_runner,
    stable_describe,
    using_runner,
)
from repro.workloads.named import bimodal_50_1_50_100

NUM_REQUESTS = 800


# -- fixtures for stable_describe's structural coverage ----------------------


class _Knob(enum.Enum):
    FAST = 1
    SLOW = 2


class _IntKnob(enum.IntEnum):
    TWO = 2


@dataclass(frozen=True)
class _Inner:
    kind: str
    weight: float


@dataclass(frozen=True)
class _Outer:
    name: str
    inner: _Inner
    pairs: tuple
    knob: _Knob


def _machine():
    return c6420(4)


def _configs():
    return [shinjuku(5.0), concord(5.0)]


def _loads():
    machine = _machine()
    workload = bimodal_50_1_50_100()
    max_load = machine.num_workers * 1e6 / workload.mean_us()
    return load_grid(max_load, 3, low_fraction=0.4, high_fraction=0.8)


def _sweep_points(runner):
    sweeps = sweep_systems(
        _machine(), _configs(), bimodal_50_1_50_100(), _loads(),
        NUM_REQUESTS, seed=7, runner=runner,
    )
    return {name: list(sweep.points) for name, sweep in sweeps.items()}


class TestDeterminism:
    def test_parallel_results_bit_identical_to_serial(self):
        """Serial, jobs=2, and jobs=4 all yield identical SweepPoints for
        two configs on fig6's workload (the ISSUE's acceptance bar)."""
        serial = _sweep_points(ParallelRunner(jobs=1))
        two = _sweep_points(ParallelRunner(jobs=2))
        four = _sweep_points(ParallelRunner(jobs=4))
        assert set(serial) == {"Shinjuku", "Concord"}
        for name in serial:
            assert serial[name] == two[name]
            assert serial[name] == four[name]

    def test_loadsweep_runner_path_matches_run_point(self):
        machine, workload = _machine(), bimodal_50_1_50_100()
        loads = _loads()
        a = LoadSweep(machine, shinjuku(5.0), workload,
                      num_requests=NUM_REQUESTS, seed=3)
        a.run(loads)
        b = LoadSweep(machine, shinjuku(5.0), workload,
                      num_requests=NUM_REQUESTS, seed=3)
        b.run(loads, runner=ParallelRunner(jobs=2))
        assert a.points == b.points

    def test_map_preserves_input_order(self):
        machine, workload = _machine(), bimodal_50_1_50_100()
        jobs = [
            SimJob(machine=machine, config=shinjuku(5.0), workload=workload,
                   load_rps=load, num_requests=300, seed=1)
            for load in reversed(_loads())
        ]
        results = ParallelRunner(jobs=2).map(jobs)
        assert [r.load_rps for r in results] == [j.load_rps for j in jobs]


class TestCache:
    def test_cache_hit_returns_identical_content(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(jobs=2, cache=cache)
        cold = _sweep_points(runner)
        assert cache.stores > 0
        warm_runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        warm = _sweep_points(warm_runner)
        assert warm_runner.stats["jobs_run"] == 0
        assert warm_runner.cache.hits == sum(len(v) for v in warm.values())
        assert cold == warm

    def test_distinct_specs_get_distinct_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        machine, workload = _machine(), bimodal_50_1_50_100()
        base = dict(machine=machine, config=shinjuku(5.0), workload=workload,
                    load_rps=1000.0, num_requests=100, seed=1)
        key = cache.key_for(SimJob(**base))
        assert key is not None
        variants = [
            SimJob(**{**base, "seed": 2}),
            SimJob(**{**base, "load_rps": 2000.0}),
            SimJob(**{**base, "num_requests": 200}),
            SimJob(**{**base, "config": shinjuku(2.0)}),
            SimJob(**{**base, "config": concord(5.0)}),
            SimJob(**{**base, "machine": c6420(2)}),
        ]
        keys = {cache.key_for(job) for job in variants}
        assert key not in keys
        assert len(keys) == len(variants)

    def test_same_spec_same_key_across_instances(self, tmp_path):
        machine, workload = _machine(), bimodal_50_1_50_100()
        a = SimJob(machine=machine, config=concord(5.0), workload=workload,
                   load_rps=5e5, num_requests=100, seed=1)
        b = SimJob(machine=c6420(4), config=concord(5.0),
                   workload=bimodal_50_1_50_100(),
                   load_rps=5e5, num_requests=100, seed=1)
        cache = ResultCache(tmp_path)
        assert cache.key_for(a) == cache.key_for(b)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        hit, value = cache.get(key)
        assert not hit and value is None

    def test_lambda_configs_are_uncacheable_not_fatal(self, tmp_path):
        config = RuntimeConfig(
            name="adhoc", quantum_us=5.0,
            preemption_factory=lambda machine: None,
        )
        job = SimJob(machine=_machine(), config=config,
                     workload=bimodal_50_1_50_100(), load_rps=1e5,
                     num_requests=10, seed=1)
        cache = ResultCache(tmp_path)
        assert cache.key_for(job) is None


class TestStableDescribe:
    def test_rejects_lambdas(self):
        with pytest.raises(UncacheableValue):
            stable_describe(lambda: None)

    def test_primitives_and_containers(self):
        desc = stable_describe({"b": [1, 2.5], "a": ("x", None)})
        assert desc == stable_describe({"a": ("x", None), "b": [1, 2.5]})

    def test_float_int_distinct(self):
        assert stable_describe(1) != stable_describe(1.0)

    def test_class_references_by_name(self):
        from repro.workloads.arrivals import PoissonProcess

        desc = stable_describe(PoissonProcess)
        assert "PoissonProcess" in str(desc)

    def test_nested_frozen_dataclasses_stable(self):
        def make():
            return _Outer(
                name="n", inner=_Inner(kind="k", weight=1.5),
                pairs=(_Inner("a", 0.25), _Inner("b", 0.75)),
                knob=_Knob.FAST,
            )
        assert stable_describe(make()) == stable_describe(make())

    def test_nested_field_change_changes_description(self):
        base = _Outer(name="n", inner=_Inner("k", 1.5),
                      pairs=(_Inner("a", 0.25),), knob=_Knob.FAST)
        deep = _Outer(name="n", inner=_Inner("k", 2.5),
                      pairs=(_Inner("a", 0.25),), knob=_Knob.FAST)
        in_tuple = _Outer(name="n", inner=_Inner("k", 1.5),
                          pairs=(_Inner("a", 0.5),), knob=_Knob.FAST)
        assert stable_describe(base) != stable_describe(deep)
        assert stable_describe(base) != stable_describe(in_tuple)

    def test_enum_members_distinct_from_their_values(self):
        assert stable_describe(_IntKnob.TWO) != stable_describe(2)
        assert stable_describe(_Knob.FAST) != stable_describe(1)
        assert stable_describe(_Knob.FAST) != stable_describe(_Knob.SLOW)
        assert "FAST" in str(stable_describe(_Knob.FAST))

    def test_enum_fields_give_stable_cache_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = _Outer(name="n", inner=_Inner("k", 1.0),
                   pairs=(), knob=_Knob.SLOW)
        b = _Outer(name="n", inner=_Inner("k", 1.0),
                   pairs=(), knob=_Knob.SLOW)
        assert cache.key_for(a) == cache.key_for(b)
        c = _Outer(name="n", inner=_Inner("k", 1.0),
                   pairs=(), knob=_Knob.FAST)
        assert cache.key_for(a) != cache.key_for(c)


class TestRunnerMachinery:
    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        monkeypatch.setenv("REPRO_JOBS", "nope")
        with pytest.raises(ValueError):
            resolve_jobs(None)

    def test_resolve_jobs_edge_cases(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs(None) >= 1
        # Blank env is the same as unset: serial default.
        monkeypatch.setenv("REPRO_JOBS", "   ")
        assert resolve_jobs(None) == 1
        # Negative values (env or argument) mean "all cores", never 0.
        monkeypatch.setenv("REPRO_JOBS", "-2")
        assert resolve_jobs(None) >= 1
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(-3) >= 1
        # An explicit argument beats the environment.
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(2) == 2
        with pytest.raises(ValueError):
            monkeypatch.setenv("REPRO_JOBS", "2.5")
            resolve_jobs(None)

    def test_chunk_boundaries(self):
        runner = ParallelRunner(jobs=2, chunksize=10)
        # chunksize beyond the batch: everything lands in one chunk.
        assert runner._chunk([0, 1, 2, 3], 2, singleton=False) == [[0, 1, 2, 3]]
        # Singleton (watchdog/retry) rounds ignore chunksize entirely.
        assert runner._chunk([3, 5], 2, singleton=True) == [[3], [5]]
        # Default chunking covers every index exactly once, in order.
        default = ParallelRunner(jobs=2)
        chunks = default._chunk(list(range(17)), 2, singleton=False)
        assert [i for chunk in chunks for i in chunk] == list(range(17))
        assert all(chunk for chunk in chunks)

    def test_single_job_batch_stays_in_process(self):
        # One job cannot be parallelised; no pool should ever start.
        runner = ParallelRunner(jobs=4)
        job = SimJob(machine=_machine(), config=shinjuku(5.0),
                     workload=bimodal_50_1_50_100(), load_rps=2e5,
                     num_requests=100, seed=1)
        result = runner.map([job])
        assert result[0].completed > 0
        assert runner.stats["parallel_batches"] == 0
        assert runner.stats["pool_starts"] == 0
        assert runner.stats["serial_batches"] == 1

    def test_pickle_probe_is_lazy_and_caps_detail(self, monkeypatch):
        # The probe stops at the first unpicklable job instead of
        # pickling the whole batch, and clips huge exception text.
        probes = []
        real_dumps = pickle.dumps

        class Unpicklable:
            def __reduce__(self):
                raise TypeError("boom " + "x" * 5000)

        def counting_dumps(obj, *args, **kwargs):
            probes.append(obj)
            return real_dumps(obj, *args, **kwargs)

        import repro.parallel.runner as runner_mod
        monkeypatch.setattr(runner_mod.pickle, "dumps", counting_dumps)
        runner = ParallelRunner(jobs=2)
        batch = [Unpicklable() for _ in range(6)]
        with pytest.warns(RuntimeWarning) as captured:
            assert runner._picklable(batch) is False
        # One batch probe plus the culprit field probes — never all six.
        assert len(probes) <= 2
        message = str(captured[0].message)
        assert len(message) < 600

    def test_unpicklable_batch_falls_back_in_process(self):
        config = RuntimeConfig(
            name="adhoc-shinjuku", quantum_us=5.0,
            preemption_factory=lambda machine: __import__(
                "repro.core.preemption", fromlist=["PostedIPI"]
            ).PostedIPI(),
        )
        with pytest.raises(Exception):
            pickle.dumps(config)
        runner = ParallelRunner(jobs=4)
        job = SimJob(machine=_machine(), config=config,
                     workload=bimodal_50_1_50_100(), load_rps=2e5,
                     num_requests=200, seed=1)
        with pytest.warns(RuntimeWarning, match="fell back to serial"):
            results = runner.map([job, job])
        assert runner.stats["fallbacks"] >= 1
        assert runner.stats["parallel_batches"] == 0
        assert results[0] == results[1]
        assert results[0].completed > 0
        # The degradation warns once per runner, not once per batch.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = runner.map([job])
        assert again[0] == results[0]

    def test_fallback_warning_names_the_unpicklable_field(self):
        config = RuntimeConfig(
            name="adhoc-shinjuku", quantum_us=5.0,
            preemption_factory=lambda machine: __import__(
                "repro.core.preemption", fromlist=["PostedIPI"]
            ).PostedIPI(),
        )
        job = SimJob(machine=_machine(), config=config,
                     workload=bimodal_50_1_50_100(), load_rps=2e5,
                     num_requests=100, seed=1)
        with pytest.warns(RuntimeWarning) as captured:
            ParallelRunner(jobs=2).map([job, job])
        message = str(captured[0].message)
        # The culprit is the dataclass field holding the lambda, named
        # precisely so users know what to fix for true parallelism.
        assert "culprit: SimJob.config" in message

    def test_pool_failure_warns_and_falls_back(self, monkeypatch):
        runner = ParallelRunner(jobs=2)

        def broken_pool(batch, workers, outputs, settle):
            raise OSError("pools forbidden here")

        monkeypatch.setattr(runner, "_execute_pool", broken_pool)
        job = SimJob(machine=_machine(), config=shinjuku(5.0),
                     workload=bimodal_50_1_50_100(), load_rps=2e5,
                     num_requests=200, seed=1)
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            results = runner.map([job, job])
        assert runner.stats["fallbacks"] == 1
        assert runner.stats["serial_batches"] == 1
        assert results[0] == results[1]

    def test_pool_failure_salvages_completed_results(self, monkeypatch):
        """Satellite regression: a pool that dies mid-batch keeps the
        chunks that finished and re-runs only the unfinished remainder."""
        import repro.parallel.runner as runner_mod

        runner = ParallelRunner(jobs=2)
        real_run = runner_mod._run_timed
        ran_serially = []

        def counting_run(job):
            ran_serially.append(job.load_rps)
            return real_run(job)

        def partial_pool(batch, workers, outputs, settle):
            # Complete the first half, then fail like a broken pool.
            for i in range(len(batch) // 2):
                settle(i, *real_run(batch[i]))
            raise OSError("worker pool failed mid-batch")

        monkeypatch.setattr(runner, "_execute_pool", partial_pool)
        monkeypatch.setattr(runner_mod, "_run_timed", counting_run)
        jobs = [
            SimJob(machine=_machine(), config=shinjuku(5.0),
                   workload=bimodal_50_1_50_100(), load_rps=load,
                   num_requests=200, seed=1)
            for load in (1e5, 2e5, 3e5, 4e5)
        ]
        with pytest.warns(RuntimeWarning,
                          match="2 unfinished job"):
            results = runner.map(jobs)
        # Only the unfinished remainder ran in-process.
        assert ran_serially == [3e5, 4e5]
        serial = ParallelRunner(jobs=1).map(jobs)
        assert results == serial

    def test_default_runner_context(self):
        original = get_default_runner()
        override = ParallelRunner(jobs=2)
        with using_runner(override) as active:
            assert active is override
            assert get_default_runner() is override
        assert get_default_runner() is original
        set_default_runner(None)
        assert get_default_runner() is not override

    def test_jobs_are_picklable(self):
        job = SimJob(machine=_machine(), config=concord(5.0),
                     workload=bimodal_50_1_50_100(), load_rps=1e5,
                     num_requests=10, seed=1)
        clone = pickle.loads(pickle.dumps(job))
        assert clone.config.name == "Concord"


class TestRackJobs:
    def test_rack_job_matches_direct_cluster_run(self):
        from repro.cluster import Cluster
        from repro.parallel import RackJob
        from repro.workloads.arrivals import PoissonProcess

        machine = c6420(2)
        workload = bimodal_50_1_50_100()
        load = 0.6 * 2 * 2 * 1e6 / workload.mean_us()
        job = RackJob(machine=machine, config=concord(5.0), num_servers=2,
                      policy="jsq", workload=workload, load_rps=load,
                      num_requests=600, seed=5)
        direct = Cluster(machine, concord(5.0), 2, policy="jsq", seed=5)
        direct_result = direct.run(
            workload, PoissonProcess(load), 600, max_events=120_000_000
        )
        outcome = ParallelRunner(jobs=2).map([job])[0]
        assert outcome["p99"] == direct_result.summary(0.1).p99
        assert outcome["imbalance"] == direct_result.imbalance()
        assert outcome["drained"] == direct_result.drained
