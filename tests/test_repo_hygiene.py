"""Repository-level checks: examples compile, public modules are
documented, experiment registry matches DESIGN.md's inventory."""

import pathlib
import py_compile

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestExamples:
    def test_all_examples_compile(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 5
        for path in examples:
            py_compile.compile(str(path), doraise=True)

    def test_examples_reference_public_api_only(self):
        # Examples should demonstrate the public surface, not internals.
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text()
            assert "._" not in text.replace("self._", ""), path.name


class TestDocstrings:
    def test_every_package_module_has_a_docstring(self):
        missing = []
        for path in sorted((REPO / "src" / "repro").rglob("*.py")):
            source = path.read_text()
            stripped = source.lstrip()
            if not stripped:
                continue
            if not stripped.startswith(('"""', "'''")):
                missing.append(str(path.relative_to(REPO)))
        assert not missing, missing


class TestDesignDocSync:
    def test_every_experiment_listed_in_design(self):
        from repro.experiments.registry import EXPERIMENTS

        design = (REPO / "DESIGN.md").read_text()
        for experiment_id in EXPERIMENTS:
            base = experiment_id.split("-q")[0]
            assert base.split("-")[0] in design or base in design, (
                experiment_id
            )

    def test_every_bench_file_exists_per_figure(self):
        bench_dir = REPO / "benchmarks"
        for figure in ("fig2", "fig3", "fig5", "fig6", "fig7", "fig8",
                       "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
                       "fig15", "table1"):
            assert (bench_dir / "test_bench_{}.py".format(figure)).exists()

    def test_readme_mentions_core_commands(self):
        readme = (REPO / "README.md").read_text()
        for needle in ("pip install -e .", "concord-repro", "pytest tests/",
                       "pytest benchmarks/ --benchmark-only"):
            assert needle in readme
