"""Tests for the sweep-supervision layer: checkpoint/resume journals,
per-job watchdogs and retries, quarantine, and the self-healing result
cache.

The load-bearing property throughout is the repo's usual one: resilience
must never change results.  A resumed sweep, a sweep that lost a worker,
a sweep whose cache was corrupted on disk — all must produce output
bit-identical to an undisturbed serial run, and the kill/resume variants
are exercised against *real* process deaths via ``tests/chaos_driver.py``
rather than monkeypatched stand-ins.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import time
import warnings
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.core.presets import shinjuku
from repro.hardware import c6420
from repro.parallel import (
    ParallelRunner,
    Quarantined,
    ResultCache,
    SimJob,
    SweepCheckpoint,
    checkpoint_job_key,
)
from repro.parallel.checkpoint import CHECKPOINT_MAGIC
from repro.workloads.named import bimodal_50_1_50_100

DRIVER = Path(__file__).resolve().parent / "chaos_driver.py"


def _sim_job(load=2e5, requests=200):
    return SimJob(machine=c6420(2), config=shinjuku(5.0),
                  workload=bimodal_50_1_50_100(), load_rps=load,
                  num_requests=requests, seed=1)


@dataclass(frozen=True)
class HangJob:
    """Sleeps far past any watchdog; simulates a livelocked simulation."""

    seconds: float = 30.0

    def run(self):
        time.sleep(self.seconds)
        return "hung job finished (watchdog failed)"


@dataclass(frozen=True)
class ErrorJob:
    """Raises; simulates a job whose parameters are invalid.  An
    optional delay lets a test make completion order disagree with
    submission order."""

    msg: str = "bad sweep parameters"
    delay: float = 0.0

    def run(self):
        if self.delay:
            time.sleep(self.delay)
        raise ValueError(self.msg)


@dataclass(frozen=True)
class QuickJob:
    token: int

    def run(self):
        return ("ok", self.token)


@dataclass(frozen=True)
class SlowJob:
    """Finishes well inside the watchdog — but queue-wait behind its
    batch-mates can exceed it when pending jobs outnumber workers."""

    token: int
    seconds: float = 0.2

    def run(self):
        time.sleep(self.seconds)
        return ("slow-ok", self.token)


@dataclass(frozen=True)
class BadReturnJob:
    """Returns an unpicklable value: the pool task fails with a plain
    PicklingError while the pool itself stays alive."""

    def run(self):
        return lambda: None


# -- checkpoint journal -------------------------------------------------------


class TestCheckpointJournal:
    def test_roundtrip_and_resume(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        with SweepCheckpoint(path, fingerprint="v1") as ckpt:
            ckpt.record("a", {"x": 1})
            ckpt.record("b", [1.5, "two"])
            assert ckpt.appends == 2
            assert ckpt.get("a") == (True, {"x": 1})
            assert ckpt.get("missing") == (False, None)
        resumed = SweepCheckpoint(path, fingerprint="v1")
        assert resumed.loaded == 2
        assert resumed.get("b") == (True, [1.5, "two"])
        assert "b" in resumed and len(resumed) == 2
        resumed.close()

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        with SweepCheckpoint(path, fingerprint="v1") as ckpt:
            ckpt.record("a", 1)
            ckpt.record("b", 2)
        # A SIGKILL mid-append leaves a partial frame at the tail.
        with open(path, "ab") as f:
            f.write(b"\x07torn")
        size_with_tail = path.stat().st_size
        resumed = SweepCheckpoint(path, fingerprint="v1")
        assert resumed.loaded == 2
        assert resumed.dropped == 1
        # The torn bytes are gone; appends continue on a frame boundary.
        resumed.record("c", 3)
        resumed.close()
        assert path.stat().st_size < size_with_tail + 50
        final = SweepCheckpoint(path, fingerprint="v1")
        assert final.loaded == 3 and final.dropped == 0
        final.close()

    def test_corrupt_record_drops_it_and_the_tail(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        with SweepCheckpoint(path, fingerprint="v1") as ckpt:
            ckpt.record("a", 1)
            ckpt.record("b", 2)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload byte in the last record
        path.write_bytes(bytes(blob))
        resumed = SweepCheckpoint(path, fingerprint="v1")
        assert resumed.loaded == 1
        assert resumed.dropped == 1
        assert resumed.get("a") == (True, 1)
        assert resumed.get("b") == (False, None)
        resumed.close()

    def test_stale_fingerprint_starts_fresh_with_warning(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        with SweepCheckpoint(path, fingerprint="old-code") as ckpt:
            ckpt.record("a", 1)
        with pytest.warns(RuntimeWarning, match="different code version"):
            resumed = SweepCheckpoint(path, fingerprint="new-code")
        assert resumed.stale
        assert len(resumed) == 0
        resumed.record("a", 99)
        resumed.close()
        fresh = SweepCheckpoint(path, fingerprint="new-code")
        assert fresh.get("a") == (True, 99)
        fresh.close()

    def test_foreign_file_is_refused(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_bytes(b"not a checkpoint at all, much longer than magic")
        with pytest.raises(ValueError, match="bad magic"):
            SweepCheckpoint(path, fingerprint="v1")
        # resume=False means "discard the old journal", not "clobber
        # arbitrary files" — a foreign file is refused there too.
        with pytest.raises(ValueError, match="bad magic"):
            SweepCheckpoint(path, fingerprint="v1", resume=False)
        # Refusal means untouched: the file must not be clobbered.
        assert path.read_bytes().startswith(b"not a checkpoint")

    def test_resume_false_overwrites(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        with SweepCheckpoint(path, fingerprint="v1") as ckpt:
            ckpt.record("a", 1)
        fresh = SweepCheckpoint(path, fingerprint="v1", resume=False)
        assert fresh.loaded == 0
        assert fresh.get("a") == (False, None)
        fresh.close()

    def test_unpicklable_result_is_skipped_not_fatal(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "sweep.ckpt", fingerprint="v1")
        with pytest.warns(RuntimeWarning, match="could not journal"):
            assert ckpt.record("a", lambda: None) is False
        assert ckpt.skipped == 1
        assert ckpt.record("b", 2) is True
        ckpt.close()

    def test_write_failure_disables_journaling_not_the_sweep(
            self, tmp_path, monkeypatch):
        """A disk-full/quota OSError mid-append warns once, counts under
        ``skipped``, and turns journaling off — it must never propagate
        through record() and abort the sweep (the 'journaling is never
        fatal' contract)."""
        ckpt = SweepCheckpoint(tmp_path / "sweep.ckpt", fingerprint="v1")
        assert ckpt.record("a", 1) is True

        def full_disk(kind, payload):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(ckpt, "_write_frame", full_disk)
        with pytest.warns(RuntimeWarning, match="write failure"):
            assert ckpt.record("b", 2) is False
        assert ckpt.skipped == 1
        # Journaling is off; later records are silent no-ops, and the
        # settled value is still served from memory for this run.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ckpt.record("c", 3) is False
        assert ckpt.get("b") == (True, 2)
        ckpt.flush()  # flush/close on a disabled journal stay no-ops
        ckpt.close()
        # On resume only the records that hit the disk come back.
        resumed = SweepCheckpoint(tmp_path / "sweep.ckpt", fingerprint="v1")
        assert resumed.loaded == 1
        assert resumed.get("a") == (True, 1)
        assert resumed.get("b") == (False, None)
        resumed.close()

    def test_magic_prefix(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        SweepCheckpoint(path, fingerprint="v1").close()
        assert path.read_bytes().startswith(CHECKPOINT_MAGIC)

    def test_job_keys_content_addressed_with_positional_fallback(self):
        job = _sim_job()
        assert checkpoint_job_key(job, 0) == checkpoint_job_key(job, 17)
        assert checkpoint_job_key(_sim_job(load=3e5), 0) != (
            checkpoint_job_key(job, 0)
        )

        @dataclass(frozen=True)
        class Opaque:
            factory: object

        opaque = Opaque(factory=lambda: None)
        assert checkpoint_job_key(opaque, 5) == "pos:00000005"


# -- self-healing result cache ------------------------------------------------


class TestCacheSelfHeal:
    def test_corrupt_entry_is_deleted_counted_and_warned_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _sim_job()
        key = cache.key_for(job)
        cache.put(key, {"p": 1})
        path = cache._path(key)
        path.write_bytes(b"\x80\x04 definitely not a pickle")

        with pytest.warns(RuntimeWarning, match="unreadable"):
            hit, value = cache.get(key)
        assert (hit, value) == (False, None)
        assert cache.corrupt == 1
        assert not path.exists()  # poison file removed

        # Second corruption: still a silent counted miss, no second warn.
        cache.put(key, {"p": 1})
        path.write_bytes(b"")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.get(key) == (False, None)
        assert cache.corrupt == 2

        # Healed: the next put/get cycle behaves normally.
        cache.put(key, {"p": 2})
        assert cache.get(key) == (True, {"p": 2})

    def test_transient_io_failure_is_a_miss_not_a_deletion(self, tmp_path):
        """Only corruption-shaped read failures self-heal by deleting;
        a transient OSError (EIO, permissions, an NFS hiccup — here an
        IsADirectoryError) is a plain miss that must leave a possibly-
        valid entry untouched."""
        cache = ResultCache(tmp_path)
        key = cache.key_for(_sim_job())
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.mkdir()  # open(path, "rb") now raises an OSError subclass
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no corruption warning either
            assert cache.get(key) == (False, None)
        assert cache.misses == 1
        assert cache.corrupt == 0
        assert path.exists()  # never deleted on a transient failure

    def test_sweep_survives_corrupted_cache(self, tmp_path):
        job = _sim_job(requests=150)
        cache = ResultCache(tmp_path)
        first = ParallelRunner(jobs=1, cache=cache).map([job])
        key = cache.key_for(job)
        cache._path(key).write_bytes(b"garbage")
        cache2 = ResultCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="unreadable"):
            second = ParallelRunner(jobs=1, cache=cache2).map([job])
        assert second == first
        assert cache2.corrupt == 1


# -- watchdog, retries, quarantine -------------------------------------------


class TestWatchdogAndQuarantine:
    def test_hung_job_is_quarantined_while_others_complete(self):
        runner = ParallelRunner(jobs=2, job_timeout=0.4, max_retries=1)
        batch = [QuickJob(1), HangJob(), QuickJob(2), QuickJob(3)]
        with pytest.warns(RuntimeWarning, match="quarantined"):
            results = runner.map(batch)
        assert results[0] == ("ok", 1)
        assert results[2] == ("ok", 2)
        assert results[3] == ("ok", 3)
        quarantined = results[1]
        assert isinstance(quarantined, Quarantined)
        assert "watchdog" in quarantined.reason
        assert quarantined.attempts == 2  # first run + one retry
        assert runner.stats["timeouts"] >= 2
        assert runner.stats["quarantined"] == 1
        footer = runner.summary_line()
        assert "QUARANTINED 1" in footer
        assert "HangJob" in footer
        runner.close()

    def test_job_error_propagates_after_checkpointing_survivors(
            self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "sweep.ckpt", fingerprint=None)
        runner = ParallelRunner(jobs=2, checkpoint=ckpt)
        batch = [QuickJob(1), QuickJob(2), ErrorJob(), QuickJob(3)]
        with pytest.raises(ValueError, match="bad sweep parameters"):
            runner.map(batch)
        # Every job that finished before the error surfaced was journaled.
        assert ckpt.appends == 3
        runner.close()
        ckpt.close()

    def test_retry_counters_reach_the_footer(self):
        runner = ParallelRunner(jobs=2, job_timeout=0.4, max_retries=0)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            runner.map([QuickJob(1), HangJob()])
        footer = runner.summary_line()
        assert "jobs simulated" in footer  # base format intact
        assert "QUARANTINED" in footer
        runner.close()

    def test_queue_wait_does_not_count_against_the_watchdog(self):
        """The deadline arms when a task starts *running*, not when it
        is submitted: 30 healthy 0.2s jobs on 2 workers queue far past a
        2s timeout, and none may be blamed as hung (regression: submit-
        time deadlines quarantined healthy queued jobs)."""
        runner = ParallelRunner(jobs=2, job_timeout=2.0, max_retries=1)
        batch = [SlowJob(i) for i in range(30)]
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any quarantine warning fails
            results = runner.map(batch)
        assert results == [("slow-ok", i) for i in range(30)]
        assert runner.stats["timeouts"] == 0
        assert runner.stats["quarantined"] == 0
        assert runner.stats["retries"] == 0
        runner.close()

    def test_watchdog_stays_armed_after_pool_alive_task_failure(self):
        """A generic task failure (unpicklable return value) leaves the
        pool alive; a genuinely hung job in the same round must still
        trip the watchdog (regression: the broken flag disabled the
        deadline scan and the collect loop spun forever)."""
        runner = ParallelRunner(jobs=2, job_timeout=0.5, max_retries=0)
        batch = [BadReturnJob(), HangJob(), QuickJob(7)]
        with pytest.warns(RuntimeWarning, match="quarantined"):
            results = runner.map(batch)
        assert results[2] == ("ok", 7)
        assert isinstance(results[0], Quarantined)
        assert "pool task failed" in results[0].reason
        assert isinstance(results[1], Quarantined)
        assert "watchdog" in results[1].reason
        assert runner.stats["timeouts"] >= 1
        runner.close()

    def test_lowest_index_error_is_raised_regardless_of_finish_order(self):
        """When several jobs raise in one round, map() re-raises the
        lowest job index's error even when a later job's error lands
        first — error identity must be deterministic run to run."""
        runner = ParallelRunner(jobs=2)
        batch = [ErrorJob(msg="error-at-0", delay=0.3),
                 ErrorJob(msg="error-at-1")]
        with pytest.raises(ValueError, match="error-at-0"):
            runner.map(batch)
        runner.close()


# -- kill-then-resume differentials (real process deaths) ---------------------


def _drive(tmp_path, *extra, check=True, timeout=240):
    cmd = [sys.executable, str(DRIVER)] + [str(a) for a in extra]
    proc = subprocess.run(
        cmd, cwd=str(tmp_path), capture_output=True, text=True,
        timeout=timeout,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            "driver failed rc={}\nstdout: {}\nstderr: {}".format(
                proc.returncode, proc.stdout, proc.stderr)
        )
    return proc


def _digest(tmp_path, name):
    return json.loads((tmp_path / name).read_text())


class TestKillResumeDifferential:
    def test_sigint_resume_is_bit_identical_sim(self, tmp_path):
        ref = _drive(tmp_path, "--checkpoint", "ref.ckpt",
                     "--digest-out", "ref.json", "--requests", 600)
        assert "OK digest=" in ref.stdout

        killed = _drive(
            tmp_path, "--checkpoint", "run.ckpt", "--digest-out", "run.json",
            "--requests", 600, "--interrupt-after-appends", 2, check=False,
        )
        assert killed.returncode == 130, killed.stdout + killed.stderr
        assert "INTERRUPTED" in killed.stdout
        assert not (tmp_path / "run.json").exists()

        resumed = _drive(tmp_path, "--checkpoint", "run.ckpt", "--resume",
                         "--digest-out", "run.json", "--requests", 600)
        assert "OK digest=" in resumed.stdout
        ref_d, run_d = _digest(tmp_path, "ref.json"), _digest(
            tmp_path, "run.json")
        assert run_d["digest"] == ref_d["digest"]
        assert run_d["checkpoint_hits"] >= 2
        assert run_d["jobs_run"] < ref_d["jobs_run"]
        assert "checkpoint" in run_d["footer"]

    def test_sigkill_resume_is_bit_identical_faults(self, tmp_path):
        """The cluster-with-faults sweep, run under a full ambient trace
        session, survives a hard SIGKILL: the journal's torn tail (if
        any) is dropped and the resumed (still traced) run's degradation
        rows are bit-identical to an undisturbed *untraced* run —
        supervision and tracing both leave results untouched."""
        _drive(tmp_path, "--mode", "faults", "--checkpoint", "ref.ckpt",
               "--digest-out", "ref.json", "--requests", 2500)

        proc = subprocess.Popen(
            [sys.executable, str(DRIVER), "--mode", "faults", "--traced",
             "--checkpoint", "run.ckpt", "--digest-out", "run.json",
             "--requests", "2500"],
            cwd=str(tmp_path), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        ckpt_path = tmp_path / "run.ckpt"
        deadline = time.monotonic() + 120
        try:
            # Wait for at least one journaled result, then kill -9.
            while time.monotonic() < deadline:
                if ckpt_path.exists() and ckpt_path.stat().st_size > 300:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("driver never journaled a result")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        resumed = _drive(tmp_path, "--mode", "faults", "--traced",
                         "--checkpoint", "run.ckpt", "--resume",
                         "--digest-out", "run.json", "--requests", 2500)
        assert "OK digest=" in resumed.stdout
        ref_d, run_d = _digest(tmp_path, "ref.json"), _digest(
            tmp_path, "run.json")
        assert run_d["digest"] == ref_d["digest"]

    def test_worker_crash_retried_bit_identical(self, tmp_path):
        """A worker that dies mid-job (os._exit — what a segfault looks
        like) is retried without disturbing finished results; the sweep's
        digest matches an undisturbed run exactly."""
        _drive(tmp_path, "--checkpoint", "ref.ckpt",
               "--digest-out", "ref.json", "--requests", 600)
        crashed = _drive(
            tmp_path, "--checkpoint", "run.ckpt", "--digest-out", "run.json",
            "--requests", 600, "--crash-at", 3,
            "--crash-marker", str(tmp_path / "crashed.marker"),
        )
        assert "OK digest=" in crashed.stdout
        assert (tmp_path / "crashed.marker").exists()
        ref_d, run_d = _digest(tmp_path, "ref.json"), _digest(
            tmp_path, "run.json")
        assert run_d["digest"] == ref_d["digest"]
        assert run_d["retries"] >= 1
        assert run_d["quarantined"] == 0


# -- sanitizer stays clean ----------------------------------------------------


class TestSanitizerCoverage:
    def test_parallel_layer_sanitizes_clean(self):
        """Every wall-clock call in the supervision layer is annotated
        (timings feed the telemetry footer, never results); repro-san
        must report zero unsuppressed findings for repro.parallel."""
        import repro
        from repro.analysis import discover_sources, run_rules

        parallel_root = Path(repro.__file__).parent / "parallel"
        findings = run_rules(discover_sources(parallel_root))
        active = [f for f in findings if not f.suppressed]
        assert active == [], "\n".join(str(f) for f in active)
