"""Interprocedural effect-analysis tests.

Two halves: synthetic fixture packages that exercise the call-graph
resolution tiers (module functions, methods via typed attributes,
callback registration), and a *differential* test over the real tree —
copy ``src/repro``, inject a seeded nondeterminism bug, and prove the
certificate catches it.  The differential half is what keeps the
analysis honest: a vacuous analysis would certify everything sim-pure,
including the sabotaged copy.
"""

import shutil
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.effects import (
    CLOCK,
    GLOBAL_RNG,
    IO,
    DEFAULT_ENTRY_POINTS,
    EffectAnalysis,
    make_fid,
)
from repro.analysis.source import discover_sources


def build_package(tmp_path, files, name="pkg"):
    """Materialize ``files`` (relative path -> source) as a package and
    return its analysed sources."""
    root = tmp_path / name
    root.mkdir(parents=True, exist_ok=True)
    (root / "__init__.py").write_text("", encoding="utf-8")
    for rel, text in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    return discover_sources(root)


class TestCallGraph:
    def test_effect_propagates_through_module_call(self, tmp_path):
        sources = build_package(tmp_path, {
            "a.py": """
                from pkg import b

                def run():
                    return b.helper()
            """,
            "b.py": """
                import time

                def helper():
                    return time.time()
            """,
        })
        analysis = EffectAnalysis(sources)
        assert CLOCK in analysis.effects_of("pkg.a:run")
        witness = analysis.witness("pkg.a:run", CLOCK)
        assert any("pkg.b:helper" in step for step in witness)

    def test_pure_function_has_no_effects(self, tmp_path):
        sources = build_package(tmp_path, {
            "a.py": """
                def run(x):
                    return x * 2
            """,
        })
        analysis = EffectAnalysis(sources)
        assert analysis.effects_of("pkg.a:run") == frozenset()

    def test_method_call_via_constructor_typed_local(self, tmp_path):
        sources = build_package(tmp_path, {
            "engine.py": """
                import random

                class Engine:
                    def spin(self):
                        return random.random()
            """,
            "driver.py": """
                from pkg.engine import Engine

                def run():
                    engine = Engine()
                    return engine.spin()
            """,
        })
        analysis = EffectAnalysis(sources)
        assert GLOBAL_RNG in analysis.effects_of("pkg.driver:run")

    def test_self_attribute_type_from_init(self, tmp_path):
        sources = build_package(tmp_path, {
            "parts.py": """
                class Probe:
                    def read(self):
                        import os
                        return os.environ.get("X")
            """,
            "owner.py": """
                from pkg.parts import Probe

                class Owner:
                    def __init__(self):
                        self.probe = Probe()

                    def run(self):
                        return self.probe.read()
            """,
        })
        analysis = EffectAnalysis(sources)
        effects = analysis.effects_of("pkg.owner:Owner.run")
        assert "env" in effects

    def test_callback_registration_reaches_handler(self, tmp_path):
        # A bound method passed as a value (callback style, like
        # LoadBalancer._fire) must still contribute its effects.
        sources = build_package(tmp_path, {
            "timer.py": """
                class Timer:
                    def at(self, when, fn):
                        pass
            """,
            "agent.py": """
                from pkg.timer import Timer

                class Agent:
                    def __init__(self):
                        self.timer = Timer()

                    def start(self):
                        self.timer.at(10, self._fire)

                    def _fire(self):
                        with open("log.txt") as fh:
                            return fh.read()
            """,
        })
        analysis = EffectAnalysis(sources)
        assert IO in analysis.effects_of("pkg.agent:Agent.start")

    def test_super_call_reaches_base_method(self, tmp_path):
        sources = build_package(tmp_path, {
            "base.py": """
                import time

                class Base:
                    def __init__(self):
                        self.born = time.time()
            """,
            "derived.py": """
                from pkg.base import Base

                class Derived(Base):
                    def __init__(self, tag):
                        super().__init__()
                        self.tag = tag

                def run():
                    return Derived("x")
            """,
        })
        analysis = EffectAnalysis(sources)
        assert CLOCK in analysis.effects_of("pkg.derived:Derived.__init__")
        assert CLOCK in analysis.effects_of("pkg.derived:run")

    def test_module_import_effects_count(self, tmp_path):
        # Importing a module executes its top level; a module-level
        # effect taints everything that imports it.
        sources = build_package(tmp_path, {
            "tainted.py": """
                import time

                STARTED = time.time()

                def helper(x):
                    return x
            """,
            "user.py": """
                from pkg import tainted

                def run():
                    return tainted.helper(1)
            """,
        })
        analysis = EffectAnalysis(sources)
        assert CLOCK in analysis.effects_of("pkg.user:run")

    def test_reachability_closure(self, tmp_path):
        sources = build_package(tmp_path, {
            "chain.py": """
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return 1

                def unrelated():
                    return 2
            """,
        })
        analysis = EffectAnalysis(sources)
        reachable = analysis.reachable_from("pkg.chain:a")
        for name in ("a", "b", "c"):
            assert make_fid("pkg.chain", name) in reachable
        assert make_fid("pkg.chain", "unrelated") not in reachable

    def test_certify_reports_missing_entry(self, tmp_path):
        sources = build_package(tmp_path, {
            "a.py": """
                def run():
                    return 1
            """,
        })
        analysis = EffectAnalysis(sources)
        certificate = analysis.certify(entries=("pkg.a:run", "pkg.a:gone"))
        by_entry = {e.entry: e for e in certificate.entries}
        assert by_entry["pkg.a:run"].found
        assert by_entry["pkg.a:run"].pure
        assert not by_entry["pkg.a:gone"].found
        assert not certificate.ok


# -- the differential test over the real tree --------------------------------


REPRO_SRC = Path(repro.__file__).parent


def copy_repro(tmp_path):
    target = tmp_path / "repro"
    shutil.copytree(
        REPRO_SRC, target,
        ignore=shutil.ignore_patterns("__pycache__", "*.pyc"),
    )
    return target


def inject_wall_clock(tree):
    """Plant a wall-clock read inside Dispatcher.__init__ — the heart of
    every simulation, reachable from all three job entry points."""
    path = tree / "core" / "dispatcher.py"
    text = path.read_text(encoding="utf-8")
    anchor = "    def __init__(self, sim, server):\n"
    assert anchor in text, "dispatcher anchor moved; update the test"
    sabotage = (
        anchor
        + "        import time\n"
        + "        self._sneaky_epoch = time.time()\n"
    )
    path.write_text(text.replace(anchor, sabotage, 1), encoding="utf-8")


class TestDifferential:
    def test_clean_tree_certifies_sim_pure(self, tmp_path):
        tree = copy_repro(tmp_path)
        analysis = EffectAnalysis(discover_sources(tree))
        certificate = analysis.certify()
        assert certificate.ok
        for entry in certificate.entries:
            assert entry.found, entry.entry
            assert entry.pure, (entry.entry, entry.violations)
            # Non-vacuous: the closure actually spans the simulator.
            assert entry.reachable > 50, entry.entry

    def test_injected_wall_clock_breaks_certificate(self, tmp_path):
        tree = copy_repro(tmp_path)
        inject_wall_clock(tree)
        analysis = EffectAnalysis(discover_sources(tree))
        certificate = analysis.certify()
        assert not certificate.ok
        impure = [e for e in certificate.entries if not e.pure]
        # Every entry point simulates through a Dispatcher.
        assert {e.entry for e in impure} == set(DEFAULT_ENTRY_POINTS)
        for entry in impure:
            assert CLOCK in entry.violations
            witness = entry.witnesses[CLOCK]
            assert any("dispatcher" in step.lower() for step in witness)
            assert any("time.time" in step for step in witness)

    def test_injected_global_rng_breaks_certificate(self, tmp_path):
        tree = copy_repro(tmp_path)
        path = tree / "core" / "dispatcher.py"
        text = path.read_text(encoding="utf-8")
        anchor = "    def __init__(self, sim, server):\n"
        assert anchor in text
        sabotage = (
            anchor
            + "        import random\n"
            + "        self._jitter = random.random()\n"
        )
        path.write_text(text.replace(anchor, sabotage, 1), encoding="utf-8")
        analysis = EffectAnalysis(discover_sources(tree))
        certificate = analysis.certify()
        assert not certificate.ok
        impure = [e for e in certificate.entries if not e.pure]
        assert impure
        assert all(GLOBAL_RNG in e.violations for e in impure)


class TestRealTreeClosure:
    """Sanity probes: the certified closure includes the machinery a
    simulation actually exercises (guards against resolution regressions
    that would silently shrink the analysis)."""

    @pytest.fixture(scope="class")
    def analysis(self):
        return EffectAnalysis(discover_sources(REPRO_SRC))

    @pytest.mark.parametrize("entry,probe", [
        ("repro.parallel.jobs:SimJob.run", "repro.core.server:Server.run"),
        ("repro.parallel.jobs:SimJob.run",
         "repro.sim.engine:Simulator.run"),
        ("repro.parallel.jobs:SimJob.run",
         "repro.core.dispatcher:Dispatcher.__init__"),
        ("repro.parallel.jobs:SimJob.run",
         "repro.workloads.arrivals:PoissonProcess.next_gap_us"),
        ("repro.parallel.jobs:RackJob.run",
         "repro.cluster.rack:Cluster.run"),
        ("repro.parallel.jobs:RackJob.run",
         "repro.core.server:Server.deliver"),
        ("repro.parallel.jobs:RackJob.run",
         "repro.core.dispatcher:Dispatcher.__init__"),
    ])
    def test_probe_reachable(self, analysis, entry, probe):
        assert probe in analysis.reachable_from(entry)
