"""The repo-wide sanitizer gate.

This is the test the CI ``sanitize`` job mirrors: the shipped tree must
carry zero unsuppressed findings, every suppression pragma must state a
reason, and the interprocedural analysis must certify all three parallel
job entry points sim-pure.  If a change trips this test, either fix the
nondeterminism or suppress it with a written justification — silence is
not an option.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    DEFAULT_ENTRY_POINTS,
    EffectAnalysis,
    discover_sources,
    run_rules,
)
from repro.analysis.cli import main as repro_san_main
from repro.analysis.report import report_dict
from repro.analysis.rules import ERROR

REPRO_SRC = Path(repro.__file__).parent


@pytest.fixture(scope="module")
def sources():
    return discover_sources(REPRO_SRC)


@pytest.fixture(scope="module")
def findings(sources):
    return run_rules(sources)


@pytest.fixture(scope="module")
def certificate(sources):
    return EffectAnalysis(sources).certify()


class TestRepoIsClean:
    def test_zero_unsuppressed_findings(self, findings):
        active = [f for f in findings if not f.suppressed]
        assert active == [], "\n".join(str(f) for f in active)

    def test_every_suppression_states_a_reason(self, sources, findings):
        for src in sources:
            for lineno, pragma in src.suppressions.items():
                assert pragma.reason, (
                    "{}:{}: repro-san pragma without a '-- reason'".format(
                        src.path, lineno
                    )
                )
        for finding in findings:
            if finding.suppressed:
                assert finding.suppress_reason

    def test_no_skipped_files(self, sources):
        skipped = [src.path for src in sources if src.skip]
        assert skipped == []


class TestCertificate:
    def test_certificate_ok(self, certificate):
        assert certificate.ok

    def test_all_entry_points_found_and_pure(self, certificate):
        assert {e.entry for e in certificate.entries} == set(
            DEFAULT_ENTRY_POINTS
        )
        for entry in certificate.entries:
            assert entry.found, entry.entry
            assert entry.pure, (entry.entry, entry.violations,
                                entry.witnesses)

    def test_closures_are_substantial(self, certificate):
        # A resolution regression that silently shrank the call graph
        # would still "certify" — vacuously.  Pin a floor.
        for entry in certificate.entries:
            assert entry.reachable > 100, (entry.entry, entry.reachable)

    def test_externals_are_the_assumption_list(self, certificate):
        # Externals are calls the analysis could not resolve and assumes
        # pure; the list must stay short and reviewed.  Growth here means
        # the resolver lost precision or new untracked calls appeared.
        for entry in certificate.entries:
            assert len(entry.externals) < 40, (
                entry.entry, sorted(entry.externals)
            )


class TestCli:
    def test_json_run_exits_zero_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "repro-san.json"
        code = repro_san_main(
            ["--format", "json", "--output", str(out), str(REPRO_SRC)]
        )
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["summary"]["errors"] == 0
        assert payload["certificate"]["ok"] is True
        entries = {e["entry"]: e for e in payload["certificate"]["entries"]}
        assert set(entries) == set(DEFAULT_ENTRY_POINTS)
        assert all(e["pure"] for e in entries.values())
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert repro_san_main(["--list-rules"]) == 0
        listing = capsys.readouterr().out
        for code in ("DET001", "DET002", "DET003", "DET004", "DET005",
                     "PAR001", "PAR002"):
            assert code in listing

    def test_failing_tree_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "__init__.py").write_text("", encoding="utf-8")
        (bad / "m.py").write_text(
            "import time\n\n\ndef f():\n    return time.time()\n",
            encoding="utf-8",
        )
        assert repro_san_main(["--no-certify", str(bad)]) == 1
        capsys.readouterr()

    def test_report_dict_round_trips_findings(self, sources, findings,
                                              certificate):
        payload = report_dict(findings, sources, certificate)
        assert payload["summary"]["suppressed"] == sum(
            1 for f in findings if f.suppressed
        )
        assert payload["summary"]["errors"] == sum(
            1 for f in findings
            if f.severity == ERROR and not f.suppressed
        )
        assert payload["summary"]["files"] == len(sources)
