"""Per-rule unit tests for the repro-san determinism catalogue.

Each test feeds a small synthetic module through
:class:`~repro.analysis.source.SourceFile` and asserts which rules fire
(and, as importantly, which do not — neutralized patterns like
``sorted(a_set)`` must stay silent).
"""

import textwrap

import pytest

from repro.analysis.rules import rules_by_code, run_rules
from repro.analysis.source import SourceFile


def check(text, module="repro.sim.fake", codes=None, path="fake.py"):
    """Findings for ``text`` as module ``module`` (default: a sim path)."""
    src = SourceFile.from_text(
        textwrap.dedent(text), path=path, module=module
    )
    rules = rules_by_code(codes) if codes else None
    return run_rules([src], rules=rules)


def fired(findings):
    return sorted({f.rule for f in findings if not f.suppressed})


class TestWallClock:
    def test_time_time_flagged(self):
        findings = check("""
            import time

            def f():
                return time.time()
        """)
        assert "DET001" in fired(findings)

    def test_aliased_import_flagged(self):
        findings = check("""
            import time as clock

            def f():
                return clock.monotonic()
        """)
        assert "DET001" in fired(findings)

    def test_datetime_now_flagged(self):
        findings = check("""
            import datetime

            def f():
                return datetime.datetime.now()
        """)
        assert "DET001" in fired(findings)

    def test_simulated_clock_not_flagged(self):
        findings = check("""
            def f(sim):
                return sim.now
        """)
        assert fired(findings) == []


class TestGlobalRng:
    def test_module_level_random_flagged(self):
        findings = check("""
            import random

            def f():
                return random.random()
        """)
        assert "DET002" in fired(findings)

    def test_numpy_global_rng_flagged(self):
        findings = check("""
            import numpy as np

            def f():
                return np.random.normal()
        """)
        assert "DET002" in fired(findings)

    def test_os_urandom_flagged(self):
        findings = check("""
            import os

            def f():
                return os.urandom(8)
        """)
        assert "DET002" in fired(findings)

    def test_unseeded_constructor_flagged(self):
        findings = check("""
            import random

            def f():
                return random.Random()
        """)
        assert "DET002" in fired(findings)

    def test_seeded_instance_not_flagged(self):
        findings = check("""
            import random

            def f(seed):
                rng = random.Random(seed)
                return rng.random()
        """)
        assert fired(findings) == []


class TestUnorderedIteration:
    def test_for_over_set_literal_flagged(self):
        findings = check("""
            def f():
                out = []
                for x in {1, 2, 3}:
                    out.append(x)
                return out
        """)
        assert "DET003" in fired(findings)

    def test_for_over_set_typed_local_flagged(self):
        findings = check("""
            def f(items):
                seen = set(items)
                total = []
                for x in seen:
                    total.append(x)
                return total
        """)
        assert "DET003" in fired(findings)

    def test_sorted_set_not_flagged(self):
        findings = check("""
            def f(items):
                seen = set(items)
                out = []
                for x in sorted(seen):
                    out.append(x)
                return out
        """)
        assert fired(findings) == []

    def test_membership_and_len_not_flagged(self):
        findings = check("""
            def f(items, probe):
                seen = set(items)
                return probe in seen, len(seen)
        """)
        assert fired(findings) == []

    def test_list_of_set_flagged(self):
        findings = check("""
            def f(items):
                seen = set(items)
                return list(seen)
        """)
        assert "DET003" in fired(findings)


class TestIdentityOrder:
    def test_sort_key_id_flagged(self):
        findings = check("""
            def f(objs):
                return sorted(objs, key=id)
        """)
        assert "DET004" in fired(findings)

    def test_sort_key_lambda_with_id_flagged(self):
        findings = check("""
            def f(objs):
                return sorted(objs, key=lambda o: (id(o), o))
        """)
        assert "DET004" in fired(findings)

    def test_id_ordering_comparison_flagged(self):
        findings = check("""
            def f(a, b):
                return id(a) < id(b)
        """)
        assert "DET004" in fired(findings)

    def test_id_as_mapping_key_flagged(self):
        findings = check("""
            def f(obj, table):
                table[id(obj)] = obj
        """)
        assert "DET004" in fired(findings)

    def test_stable_sort_key_not_flagged(self):
        findings = check("""
            def f(objs):
                return sorted(objs, key=lambda o: o.name)
        """)
        assert fired(findings) == []


class TestAmbientRead:
    def test_open_in_sim_path_flagged(self):
        text = """
            def f(path):
                with open(path) as fh:
                    return fh.read()
        """
        findings = check(text, module="repro.sim.fake")
        assert "DET005" in fired(findings)

    def test_environ_in_sim_path_flagged(self):
        findings = check("""
            import os

            def f():
                return os.environ.get("KNOB")
        """, module="repro.core.fake")
        assert "DET005" in fired(findings)

    def test_open_outside_sim_path_not_flagged(self):
        text = """
            def f(path):
                with open(path) as fh:
                    return fh.read()
        """
        findings = check(text, module="repro.experiments.fake")
        assert "DET005" not in fired(findings)


class TestJobClosure:
    def test_lambda_in_job_spec_flagged(self):
        findings = check("""
            from repro.parallel import SimJob

            def f(machine, workload):
                return SimJob(machine=machine, config=lambda: None,
                              workload=workload, load_rps=1.0,
                              num_requests=10, seed=1)
        """, module="repro.experiments.fake")
        assert "PAR001" in fired(findings)

    def test_plain_job_spec_not_flagged(self):
        findings = check("""
            from repro.parallel import SimJob

            def f(machine, config, workload):
                return SimJob(machine=machine, config=config,
                              workload=workload, load_rps=1.0,
                              num_requests=10, seed=1)
        """, module="repro.experiments.fake")
        assert "PAR001" not in fired(findings)


class TestMutableJobState:
    def test_mutable_default_on_frozen_dataclass_flagged(self):
        findings = check("""
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Spec:
                name: str
                tags = []
        """, module="repro.parallel.fake")
        assert "PAR002" in fired(findings)

    def test_field_default_factory_not_flagged(self):
        findings = check("""
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class Spec:
                name: str
                tags: tuple = ()
                extra: dict = field(default_factory=dict)
        """, module="repro.parallel.fake")
        assert "PAR002" not in fired(findings)

    def test_plain_class_not_flagged(self):
        findings = check("""
            class Registry:
                entries = {}
        """, module="repro.parallel.fake")
        assert "PAR002" not in fired(findings)


class TestSuppressions:
    def test_ignore_pragma_suppresses_with_reason(self):
        findings = check("""
            import time

            def f():
                return time.time()  # repro-san: ignore[DET001] -- progress footer only
        """)
        assert fired(findings) == []
        suppressed = [f for f in findings if f.suppressed]
        assert len(suppressed) == 1
        assert suppressed[0].rule == "DET001"
        assert suppressed[0].suppress_reason == "progress footer only"

    def test_ignore_pragma_is_code_specific(self):
        findings = check("""
            import time, random

            def f():
                return time.time(), random.random()  # repro-san: ignore[DET001] -- half-covered
        """)
        assert fired(findings) == ["DET002"]

    def test_wildcard_pragma_covers_everything(self):
        findings = check("""
            import time, random

            def f():
                return time.time(), random.random()  # repro-san: ignore[*] -- test fixture
        """)
        assert fired(findings) == []

    def test_skip_file_pragma(self):
        findings = check("""
            # repro-san: skip-file -- generated fixture
            import time

            def f():
                return time.time()
        """)
        assert findings == []

    def test_rule_filter_restricts_catalogue(self):
        findings = check("""
            import time, random

            def f():
                return time.time(), random.random()
        """, codes=["DET002"])
        assert fired(findings) == ["DET002"]

    def test_unknown_rule_code_raises(self):
        with pytest.raises(KeyError):
            rules_by_code(["DET999"])
