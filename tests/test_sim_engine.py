"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import COMPACT_MIN_DEAD, SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.at(30, lambda: order.append("c"))
    sim.at(10, lambda: order.append("a"))
    sim.at(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.at(5, lambda l=label: order.append(l))
    sim.run()
    assert order == list("abcde")


def test_after_schedules_relative_to_now():
    sim = Simulator()
    seen = []

    def first():
        sim.after(7, lambda: seen.append(sim.now))

    sim.at(3, first)
    sim.run()
    assert seen == [10]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.at(5, lambda: fired.append(1))
    sim.at(1, event.cancel)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.at(5, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert event.cancelled


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.at(10, lambda: fired.append(10))
    sim.at(100, lambda: fired.append(100))
    sim.run(until=50)
    assert fired == [10]
    assert sim.now == 50
    sim.run()
    assert fired == [10, 100]


def test_run_max_events_bounds_execution():
    sim = Simulator()
    count = []
    for t in range(1, 11):
        sim.at(t, lambda: count.append(1))
    executed = sim.run(max_events=4)
    assert executed == 4
    assert len(count) == 4


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.after(1, lambda: chain(n + 1))

    sim.at(0, lambda: chain(1))
    sim.run()
    assert seen == [1, 2, 3, 4, 5]


def test_pending_counts_live_events_only():
    sim = Simulator()
    keep = sim.at(10, lambda: None)
    drop = sim.at(20, lambda: None)
    drop.cancel()
    assert sim.pending == 1
    assert keep.time == 10


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.at(5, lambda: None)
    sim.at(9, lambda: None)
    first.cancel()
    assert sim.peek_time() == 9


def test_zero_delay_event_runs_after_current_callback():
    sim = Simulator()
    order = []

    def outer():
        sim.after(0, lambda: order.append("inner"))
        order.append("outer")

    sim.at(1, outer)
    sim.run()
    assert order == ["outer", "inner"]


def test_trace_hook_sees_each_event_but_is_deprecated():
    seen = []
    with pytest.warns(DeprecationWarning, match="probe bus"):
        sim = Simulator(trace=lambda t, name: seen.append((t, name)))
    sim.at(4, lambda: None, name="x")
    sim.at(6, lambda: None, name="y")
    sim.run()
    assert seen == [(4, "x"), (6, "y")]


def test_attach_probes_composes_with_legacy_trace():
    from repro.obs import ProbeBus

    seen = []
    with pytest.warns(DeprecationWarning):
        sim = Simulator(trace=lambda t, name: seen.append((t, name)))
    bus = ProbeBus("engine")
    sim.attach_probes(bus)
    sim.at(2, lambda: None, name="x")
    sim.run()
    assert seen == [(2, "x")]
    assert [(e.t, e.data["name"]) for e in bus.events] == [(2, "x")]


def test_events_run_counter():
    sim = Simulator()
    for t in range(1, 6):
        sim.at(t, lambda: None)
    sim.run()
    assert sim.events_run == 5


class TestCancellationAccounting:
    """Lazy cancellation is now counted and amortized away by compaction."""

    def test_events_cancelled_and_dead_in_heap(self):
        sim = Simulator()
        events = [sim.at(t, lambda: None) for t in range(1, 11)]
        for event in events[:4]:
            event.cancel()
        assert sim.events_cancelled == 4
        assert sim.dead_in_heap == 4
        assert sim.heap_size == 10
        assert sim.pending == 6

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        event = sim.at(5, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.events_cancelled == 1
        assert sim.dead_in_heap == 1

    def test_cancel_after_fire_does_not_skew_accounting(self):
        sim = Simulator()
        event = sim.at(1, lambda: None)
        sim.run()
        event.cancel()
        assert event.cancelled
        assert sim.events_cancelled == 0
        assert sim.dead_in_heap == 0

    def test_popped_dead_entries_drain_the_counter(self):
        sim = Simulator()
        for t in range(1, 6):
            event = sim.at(t, lambda: None)
            if t % 2 == 0:
                event.cancel()
        assert sim.dead_in_heap == 2
        sim.run()
        assert sim.dead_in_heap == 0
        assert sim.heap_size == 0
        assert sim.events_run == 3

    def test_explicit_compact_preserves_live_events(self):
        sim = Simulator()
        fired = []
        for t in range(1, 21):
            event = sim.at(t, lambda t=t: fired.append(t))
            if t % 2 == 0:
                event.cancel()
        sim.compact()
        assert sim.heap_size == 10
        assert sim.dead_in_heap == 0
        sim.run()
        assert fired == list(range(1, 21, 2))

    def test_compaction_storm_never_drops_live_events(self):
        """A cancellation storm triggers automatic compaction; every live
        event must still fire, in timestamp order."""
        sim = Simulator()
        fired = []
        survivors = []
        for t in range(1, 2001):
            event = sim.at(t, lambda t=t: fired.append(t))
            if t % 4 != 0:
                event.cancel()  # 1500 cancellations >> COMPACT_MIN_DEAD
            else:
                survivors.append(t)
        assert sim.events_cancelled == 1500
        assert sim.compactions >= 1
        # Compaction already swept most dead entries out of the heap.
        assert sim.heap_size < 2000
        assert sim.pending == len(survivors)
        sim.run()
        assert fired == survivors
        assert sim.events_run == len(survivors)

    def test_compaction_during_run_is_alias_safe(self):
        """compact() rewrites the heap in place while run() holds a local
        alias to it; live events scheduled after the storm must still fire."""
        sim = Simulator()
        fired = []
        doomed = []

        def storm():
            for event in doomed:
                event.cancel()

        sim.at(0, storm)
        for t in range(1, 2 * COMPACT_MIN_DEAD + 1):
            doomed.append(sim.at(10 + t, lambda: fired.append("dead")))
        sim.at(5000, lambda: fired.append("alive"))
        sim.run()
        assert sim.compactions >= 1
        assert fired == ["alive"]
        assert sim.now == 5000

    def test_small_cancel_counts_do_not_compact(self):
        sim = Simulator()
        for t in range(1, COMPACT_MIN_DEAD):
            sim.at(t, lambda: None).cancel()
        assert sim.compactions == 0
        assert sim.dead_in_heap == COMPACT_MIN_DEAD - 1


class TestAgent:
    """The serial-resource helper used to model pinned threads."""

    def test_busy_for_serializes_work(self):
        from repro.sim.process import Agent

        sim = Simulator()
        agent = Agent(sim, "thread")
        first_end = agent.busy_for(100)
        second_end = agent.busy_for(50)
        assert first_end == 100
        assert second_end == 150  # queued behind the first operation
        assert agent.busy_cycles == 150

    def test_when_free_and_is_busy(self):
        from repro.sim.process import Agent

        sim = Simulator()
        agent = Agent(sim, "thread")
        assert not agent.is_busy
        agent.busy_for(10)
        assert agent.is_busy
        assert agent.when_free() == 10

    def test_start_floor_and_utilization(self):
        from repro.sim.process import Agent

        sim = Simulator()
        agent = Agent(sim, "thread")
        end = agent.busy_for(10, start=40)
        assert end == 50
        assert agent.utilization(100) == 0.1
        assert agent.utilization(0) == 0.0

    def test_negative_busy_rejected(self):
        import pytest as _pytest

        from repro.sim.process import Agent

        with _pytest.raises(ValueError):
            Agent(Simulator(), "t").busy_for(-1)
