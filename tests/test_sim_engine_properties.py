"""Property-based tests on the event engine: ordering, cancellation, and
clock monotonicity under random schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


@given(
    times=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                   max_size=300)
)
@settings(max_examples=80)
def test_events_fire_in_nondecreasing_time_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.at(t, lambda t=t: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)
    assert sim.now == max(times)


@given(
    times=st.lists(st.integers(min_value=0, max_value=10**6), min_size=2,
                   max_size=200),
    cancel_mask=st.lists(st.booleans(), min_size=2, max_size=200),
)
@settings(max_examples=80)
def test_cancelled_events_never_fire(times, cancel_mask):
    sim = Simulator()
    fired = []
    events = []
    for index, t in enumerate(times):
        events.append(sim.at(t, lambda i=index: fired.append(i)))
    expected = set()
    for index, (event, cancel) in enumerate(zip(events, cancel_mask)):
        if cancel:
            event.cancel()
        else:
            expected.add(index)
    # Indices beyond the mask stay live.
    expected |= set(range(len(cancel_mask), len(times)))
    sim.run()
    assert set(fired) == expected


@given(
    chain_lengths=st.lists(st.integers(min_value=1, max_value=20),
                           min_size=1, max_size=20)
)
@settings(max_examples=50)
def test_self_scheduling_chains_all_complete(chain_lengths):
    sim = Simulator()
    completed = []

    def make_chain(chain_id, remaining):
        def step():
            if remaining > 1:
                make_chain(chain_id, remaining - 1)
            else:
                completed.append(chain_id)

        sim.after(1, step)

    for chain_id, length in enumerate(chain_lengths):
        make_chain(chain_id, length)
    sim.run()
    assert sorted(completed) == list(range(len(chain_lengths)))


@given(
    times=st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                   max_size=100),
    bound=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=80)
def test_run_until_partitions_the_schedule(times, bound):
    sim = Simulator()
    fired = []
    for t in times:
        sim.at(t, lambda t=t: fired.append(t))
    sim.run(until=bound)
    assert all(t <= bound for t in fired)
    before = len(fired)
    sim.run()
    assert len(fired) == len(times)
    assert sorted(fired[before:]) == sorted(t for t in times if t > bound)
