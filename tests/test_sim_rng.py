"""Unit tests for seeded RNG streams."""

from repro.sim.rng import RngStreams, hash_name


def test_streams_are_deterministic_across_instances():
    a = RngStreams(42)
    b = RngStreams(42)
    assert [a.stream("x").random() for _ in range(5)] == [
        b.stream("x").random() for _ in range(5)
    ]


def test_streams_are_independent_of_creation_order():
    a = RngStreams(7)
    b = RngStreams(7)
    a.stream("first")
    value_a = a.stream("second").random()
    value_b = b.stream("second").random()  # created first in b
    assert value_a == value_b


def test_different_names_give_different_sequences():
    streams = RngStreams(1)
    xs = [streams.stream("x").random() for _ in range(10)]
    ys = [streams.stream("y").random() for _ in range(10)]
    assert xs != ys


def test_different_seeds_give_different_sequences():
    a = RngStreams(1).stream("arrivals")
    b = RngStreams(2).stream("arrivals")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RngStreams(3)
    assert streams.stream("s") is streams.stream("s")


def test_spawn_children_are_deterministic():
    a = RngStreams(9).spawn("child")
    b = RngStreams(9).spawn("child")
    assert a.master_seed == b.master_seed
    assert a.stream("z").random() == b.stream("z").random()


def test_hash_name_is_stable_and_64bit():
    value = hash_name("arrivals")
    assert value == hash_name("arrivals")
    assert 0 <= value < (1 << 64)
    assert hash_name("a") != hash_name("b")
