"""Unit tests for seeded RNG streams."""

from repro.sim.rng import RngStreams, hash_name


def test_streams_are_deterministic_across_instances():
    a = RngStreams(42)
    b = RngStreams(42)
    assert [a.stream("x").random() for _ in range(5)] == [
        b.stream("x").random() for _ in range(5)
    ]


def test_streams_are_independent_of_creation_order():
    a = RngStreams(7)
    b = RngStreams(7)
    a.stream("first")
    value_a = a.stream("second").random()
    value_b = b.stream("second").random()  # created first in b
    assert value_a == value_b


def test_different_names_give_different_sequences():
    streams = RngStreams(1)
    xs = [streams.stream("x").random() for _ in range(10)]
    ys = [streams.stream("y").random() for _ in range(10)]
    assert xs != ys


def test_different_seeds_give_different_sequences():
    a = RngStreams(1).stream("arrivals")
    b = RngStreams(2).stream("arrivals")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RngStreams(3)
    assert streams.stream("s") is streams.stream("s")


def test_spawn_children_are_deterministic():
    a = RngStreams(9).spawn("child")
    b = RngStreams(9).spawn("child")
    assert a.master_seed == b.master_seed
    assert a.stream("z").random() == b.stream("z").random()


def test_spawn_key_is_deterministic():
    a = RngStreams(42).spawn_key("server", 0)
    b = RngStreams(42).spawn_key("server", 0)
    assert a.master_seed == b.master_seed
    assert a.stream("arrivals").random() == b.stream("arrivals").random()


def test_spawn_key_children_are_distinct():
    master = RngStreams(42)
    seeds = {master.spawn_key("server", i).master_seed for i in range(16)}
    assert len(seeds) == 16
    assert master.spawn_key("server", 0).master_seed != \
        master.spawn_key("balancer").master_seed


def test_spawn_key_independent_of_call_order_and_stream_use():
    # Unlike spawn(), spawn_key draws nothing: consuming streams or
    # spawning other keys first must not change the child.
    clean = RngStreams(9).spawn_key("server", 3).master_seed
    dirty_master = RngStreams(9)
    dirty_master.stream("arrivals").random()
    dirty_master.spawn_key("server", 0)
    dirty_master.spawn("child")
    assert dirty_master.spawn_key("server", 3).master_seed == clean


def test_spawn_key_does_not_consume_stream_randomness():
    a = RngStreams(5)
    b = RngStreams(5)
    a.spawn_key("server", 1)
    assert a.stream("arrivals").random() == b.stream("arrivals").random()


def test_spawn_key_is_order_sensitive_in_parts():
    master = RngStreams(3)
    assert master.spawn_key("a", "b").master_seed != \
        master.spawn_key("b", "a").master_seed


def test_spawn_key_distinct_from_same_named_stream():
    master = RngStreams(11)
    child = master.spawn_key("arrivals")
    assert child.stream("arrivals").random() != \
        master.stream("arrivals").random()


def test_spawn_key_requires_a_key():
    import pytest

    with pytest.raises(ValueError):
        RngStreams(1).spawn_key()


def test_hash_name_is_stable_and_64bit():
    value = hash_name("arrivals")
    assert value == hash_name("arrivals")
    assert 0 <= value < (1 << 64)
    assert hash_name("a") != hash_name("b")
