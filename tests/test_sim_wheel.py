"""Event-queue backend tests: the timing wheel against the heap.

Every test here runs against both backends (the shared contract), plus
differential tests asserting the two produce bit-identical traces on
schedules that exercise the wheel's hard cases: zero-delay
self-reschedules, cancel storms, far-future timers crossing cascade
boundaries, and bounded runs that leave the cursor past ``now``.
"""

import random

import pytest

from repro.sim.engine import Simulator, resolve_queue
from repro.sim.wheel import WheelSimulator

BACKENDS = ("heap", "wheel")

pytestmark = pytest.mark.parametrize("backend", BACKENDS)


def make_sim(backend, **kwargs):
    return Simulator(queue=backend, **kwargs)


def test_backend_selection(backend):
    sim = make_sim(backend)
    assert sim.queue == backend
    if backend == "wheel":
        assert isinstance(sim, WheelSimulator)
    else:
        assert not isinstance(sim, WheelSimulator)


def test_resolve_queue_rejects_unknown(backend):
    with pytest.raises(ValueError):
        resolve_queue("fibheap")
    assert resolve_queue(backend) == backend


def test_zero_delay_self_reschedule(backend):
    """An event rescheduling itself at delay 0 runs FIFO after any other
    same-time events, and the run terminates when it stops rechaining."""
    sim = make_sim(backend)
    order = []

    def chain(n):
        order.append((sim.now, n))
        if n < 5:
            sim.after(0, lambda: chain(n + 1))

    sim.at(10, lambda: chain(0))
    sim.at(10, lambda: order.append((sim.now, "peer")))
    sim.run()
    assert order == [(10, 0), (10, "peer")] + [(10, k) for k in range(1, 6)]
    assert sim.now == 10
    assert sim.pending == 0


def test_cancel_then_reschedule_same_slot(backend):
    """Cancelling a handle and rescheduling its callback at the same time
    fires exactly once, and the counters account for the dead entry."""
    sim = make_sim(backend)
    fired = []
    first = sim.at(50, lambda: fired.append("first"))
    first.cancel()
    first.cancel()  # idempotent; counted once
    again = sim.at(50, lambda: fired.append("again"))
    sim.run()
    assert fired == ["again"]
    assert not again.cancelled
    assert sim.events_cancelled == 1
    assert sim.events_run == 1


def test_far_future_timers_cross_cascade_boundaries(backend):
    """Timers at and around every wheel-level boundary fire in time
    order; each one cascades down through the levels as pages open."""
    sim = make_sim(backend)
    seen = []
    delays = [
        0, 1, 255, 256, 257, 65_535, 65_536, 65_537,
        2**24 - 1, 2**24, 2**24 + 1, 2**32 - 1, 2**32, 2**32 + 1,
    ]
    for d in delays:
        sim.after(d, lambda d=d: seen.append((sim.now, d)))
    sim.run()
    assert seen == [(d, d) for d in sorted(delays)]
    assert sim.pending == 0 and sim.heap_size == 0


def test_cancelled_far_timer_never_cascades_alive(backend):
    sim = make_sim(backend)
    fired = []
    doomed = sim.after(2**32 + 7, lambda: fired.append("doomed"))
    sim.after(2**32 + 8, lambda: fired.append("ok"))
    doomed.cancel()
    sim.run()
    assert fired == ["ok"]
    assert sim.dead_in_heap == 0  # swept during the cascade/drain


def test_counters_are_backend_native(backend):
    """events_cancelled / dead_in_heap / heap_size / compactions report
    live numbers for the active backend — never stale figures from the
    other one."""
    sim = make_sim(backend)
    handles = [sim.at(100 + i, lambda: None) for i in range(10)]
    assert sim.heap_size == 10 and sim.pending == 10
    for h in handles[:4]:
        h.cancel()
    assert sim.events_cancelled == 4
    assert sim.dead_in_heap == 4
    assert sim.heap_size == 10  # lazy: dead entries still occupy slots
    assert sim.pending == 6
    sim.compact()
    assert sim.compactions == 1
    assert sim.dead_in_heap == 0
    assert sim.heap_size == 6
    assert sim.pending == 6
    sim.run()
    assert sim.events_run == 6
    assert sim.heap_size == 0


def test_post_fires_without_handle(backend):
    sim = make_sim(backend)
    seen = []
    assert sim.post(5, lambda: seen.append(sim.now)) is None
    assert sim.post_at(5, lambda: seen.append(sim.now * 10)) is None
    sim.post(0, lambda: seen.append(0))
    sim.run()
    assert seen == [0, 5, 50]
    assert sim.events_run == 3


def test_post_and_after_share_fifo_order(backend):
    sim = make_sim(backend)
    order = []
    sim.after(5, lambda: order.append("a"))
    sim.post(5, lambda: order.append("b"))
    sim.after(5, lambda: order.append("c"))
    sim.post_at(5, lambda: order.append("d"))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_bounded_run_then_late_insert(backend):
    """run(until=...) advances now to the bound; later inserts below the
    internal scan position still fire, in order."""
    sim = make_sim(backend)
    seen = []
    sim.at(1000, lambda: seen.append("far"))
    assert sim.run(until=500) == 0
    assert sim.now == 500
    sim.at(600, lambda: seen.append("mid"))
    sim.post_at(600, lambda: seen.append("mid2"))
    sim.run()
    assert seen == ["mid", "mid2", "far"]


def test_step_and_max_events(backend):
    sim = make_sim(backend)
    seen = []
    for i in range(5):
        sim.at(10 * (i + 1), lambda i=i: seen.append(i))
    assert sim.step() is True
    assert seen == [0]
    assert sim.run(max_events=2) == 2
    assert seen == [0, 1, 2]
    assert sim.run() == 2
    assert sim.step() is False


def test_peek_time_skips_cancelled(backend):
    sim = make_sim(backend)
    dead = sim.at(5, lambda: None)
    sim.at(9, lambda: None)
    dead.cancel()
    assert sim.peek_time() == 9
    far_dead = sim.at(2**20, lambda: None)
    sim.run()
    far_dead.cancel()
    assert sim.peek_time() is None


def test_reentrant_run_raises(backend):
    from repro.sim.engine import SimulationError

    sim = make_sim(backend)
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError:
            errors.append(True)

    sim.at(1, reenter)
    sim.run()
    assert errors == [True]


def _torture_trace(backend, seed, events=4000):
    """A randomized schedule exercising cancels, zero delays, cascade
    boundaries, posts, and peeks; returns the full observable trace."""
    rng = random.Random(seed)
    sim = make_sim(backend)
    log = []
    handles = []
    delays = [0, 0, 1, 3, 17, 255, 256, 257, 65_535, 65_536, 2**24 + 5]

    def make_cb(tag):
        def cb():
            log.append((sim.now, tag))
            roll = rng.random()
            if roll < 0.6 and len(log) < events:
                delay = rng.choice(delays)
                if rng.random() < 0.5:
                    handles.append(sim.after(delay, make_cb(tag + 1)))
                else:
                    sim.post(delay, make_cb(-tag))
            if roll > 0.8 and handles:
                handles.pop(rng.randrange(len(handles))).cancel()
            if roll > 0.95:
                log.append(("peek", sim.peek_time()))
        return cb

    for k in range(40):
        sim.after(rng.randrange(0, 2000), make_cb(k))
    sim.run()
    return log, sim.now, sim.events_run, sim.events_cancelled, sim.pending


@pytest.mark.parametrize("seed", range(3))
def test_backends_bit_identical_randomized(backend, seed):
    if backend == "heap":
        pytest.skip("differential runs once, under the wheel parameter")
    assert _torture_trace("wheel", seed) == _torture_trace("heap", seed)


def _bounded_trace(backend, seed):
    rng = random.Random(seed)
    sim = make_sim(backend)
    log = []

    def make_cb(tag):
        def cb():
            log.append((sim.now, tag))
            if len(log) < 800:
                sim.after(rng.choice([0, 1, 100, 65_536]), make_cb(tag + 1))
                if rng.random() < 0.3:
                    sim.after(rng.choice([5, 500]), make_cb(tag + 2)).cancel()
        return cb

    for k in range(10):
        sim.after(rng.randrange(0, 400), make_cb(k))
    t = 0
    while len(log) < 1500:
        t += rng.choice([50, 333, 70_000])
        ran = sim.run(until=t, max_events=rng.choice([None, 7]))
        log.append(("chunk", sim.now, ran, sim.pending))
        if sim.pending == 0 and len(log) >= 800:
            break
    for _ in range(5):
        log.append(("step", sim.step(), sim.now))
    return log, sim.events_run, sim.events_cancelled


@pytest.mark.parametrize("seed", range(3))
def test_backends_bit_identical_bounded(backend, seed):
    if backend == "heap":
        pytest.skip("differential runs once, under the wheel parameter")
    assert _bounded_trace("wheel", seed) == _bounded_trace("heap", seed)


def _cluster_fingerprint(backend, monkeypatch):
    """A small rack run with a fault plan and full tracing — the
    heaviest client of the engine (cancellations, far timers, probes)."""
    from repro.cluster import Cluster
    from repro.core import concord
    from repro.faults import FaultPlan, ServerCrash, TelemetryBlackout
    from repro.hardware import c6420
    from repro.obs import TraceConfig, tracing
    from repro.workloads import PoissonProcess, bimodal_50_1_50_100

    monkeypatch.setenv("REPRO_QUEUE", backend)
    workload = bimodal_50_1_50_100()
    plan = FaultPlan(faults=(
        ServerCrash(at_us=200.0, down_us=150.0, server=0),
        TelemetryBlackout(at_us=100.0, duration_us=300.0),
    ))
    cluster = Cluster(
        c6420(2), concord(5.0), 2, policy="jsq", seed=17, fault_plan=plan,
    )
    load = 0.6 * 2 * 2 * 1e6 / workload.mean_us()
    with tracing(TraceConfig.full()) as session:
        result = cluster.run(workload, PoissonProcess(load), 400)
    trace_shape = [
        (bus.label, len(bus.events) if bus.events is not None else None)
        for bus in session.buses
    ]
    return (
        [(r.rid, r.completion_cycle, r.payload["server"])
         for r in result.records],
        result.num_offered,
        len(result.records),
        trace_shape,
    )


def test_cluster_with_faults_and_tracing_bit_identical(backend, monkeypatch):
    if backend == "heap":
        pytest.skip("differential runs once, under the wheel parameter")
    wheel = _cluster_fingerprint("wheel", monkeypatch)
    heap = _cluster_fingerprint("heap", monkeypatch)
    assert wheel == heap
    assert wheel[1] > 0 and wheel[2] > 0
