"""Tests for arrival processes and trace record/replay."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    ClosedLoopProcess,
    DeterministicProcess,
    PoissonProcess,
    Trace,
    TraceRecord,
    bimodal_50_1_50_100,
)


class TestPoissonProcess:
    def test_mean_gap_matches_rate(self):
        process = PoissonProcess(100_000)  # 10us mean gap
        r = random.Random(0)
        gaps = [process.next_gap_us(r) for _ in range(20000)]
        assert sum(gaps) / len(gaps) == pytest.approx(10.0, rel=0.05)

    def test_rate_property(self):
        assert PoissonProcess(5000).rate_rps == 5000

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonProcess(0)


class TestDeterministicProcess:
    def test_constant_gap(self):
        process = DeterministicProcess(1_000_000)
        r = random.Random(0)
        assert process.next_gap_us(r) == 1.0
        assert process.next_gap_us(r) == 1.0


class TestClosedLoopProcess:
    def test_zero_gap(self):
        process = ClosedLoopProcess(in_flight=4)
        assert process.next_gap_us(random.Random(0)) == 0.0
        assert process.in_flight == 4
        assert process.rate_rps == float("inf")

    def test_rejects_zero_in_flight(self):
        with pytest.raises(ValueError):
            ClosedLoopProcess(0)


class TestTrace:
    def test_sample_produces_sorted_arrivals(self):
        trace = Trace.sample(
            bimodal_50_1_50_100(), PoissonProcess(100_000), 500, random.Random(1)
        )
        arrivals = [r.arrival_us for r in trace]
        assert arrivals == sorted(arrivals)
        assert len(trace) == 500

    def test_offered_load_close_to_requested(self):
        trace = Trace.sample(
            bimodal_50_1_50_100(), PoissonProcess(200_000), 5000, random.Random(2)
        )
        assert trace.offered_load_rps() == pytest.approx(200_000, rel=0.1)

    def test_kinds_and_mean_service(self):
        trace = Trace.sample(
            bimodal_50_1_50_100(), PoissonProcess(100_000), 2000, random.Random(3)
        )
        assert trace.kinds() == {"short", "long"}
        assert trace.mean_service_us() == pytest.approx(50.5, rel=0.1)

    def test_csv_roundtrip(self, tmp_path):
        trace = Trace.sample(
            bimodal_50_1_50_100(), PoissonProcess(100_000), 100, random.Random(4)
        )
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = Trace.load_csv(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a.kind == b.kind
            assert a.arrival_us == pytest.approx(b.arrival_us, abs=1e-5)
            assert a.service_us == pytest.approx(b.service_us, abs=1e-5)

    def test_csv_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope,nope\n1,2,3\n")
        with pytest.raises(ValueError):
            Trace.load_csv(path)

    def test_record_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1.0, "x", 1.0)
        with pytest.raises(ValueError):
            TraceRecord(0.0, "x", 0.0)

    def test_empty_trace_stats(self):
        trace = Trace()
        assert trace.duration_us() == 0.0
        assert trace.offered_load_rps() == 0.0
        assert trace.mean_service_us() == 0.0


@given(
    rate=st.floats(min_value=1000.0, max_value=5_000_000.0),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50)
def test_poisson_gaps_are_nonnegative(rate, seed):
    process = PoissonProcess(rate)
    r = random.Random(seed)
    assert all(process.next_gap_us(r) >= 0.0 for _ in range(50))
