"""Unit + property tests for service-time distributions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.distributions import (
    ClassMix,
    Exponential,
    Fixed,
    Lognormal,
    RequestClass,
    Uniform,
    bimodal,
)


def rng(seed=0):
    return random.Random(seed)


class TestFixed:
    def test_always_returns_service_time(self):
        dist = Fixed(3.5)
        assert all(dist.sample_us(rng()) == 3.5 for _ in range(10))
        assert dist.mean_us() == 3.5
        assert dist.squared_coefficient_of_variation() == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Fixed(0)

    def test_sample_class_uses_name(self):
        kind, value = Fixed(2.0, name="spin").sample_class(rng())
        assert kind == "spin"
        assert value == 2.0


class TestExponential:
    def test_empirical_mean(self):
        dist = Exponential(10.0)
        r = rng(1)
        samples = [dist.sample_us(r) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(10.0, rel=0.05)

    def test_scv_is_one(self):
        assert Exponential(5.0).squared_coefficient_of_variation() == 1.0

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            Exponential(-1)


class TestUniform:
    def test_bounds_and_mean(self):
        dist = Uniform(1.0, 3.0)
        r = rng(2)
        samples = [dist.sample_us(r) for _ in range(5000)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert dist.mean_us() == 2.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(0.0, 1.0)


class TestLognormal:
    def test_mean_parameterization(self):
        dist = Lognormal(20.0, sigma=1.0)
        r = rng(3)
        samples = [dist.sample_us(r) for _ in range(60000)]
        assert sum(samples) / len(samples) == pytest.approx(20.0, rel=0.1)

    def test_scv_closed_form(self):
        import math

        dist = Lognormal(5.0, sigma=0.5)
        assert dist.squared_coefficient_of_variation() == pytest.approx(
            math.exp(0.25) - 1.0
        )


class TestClassMix:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ClassMix([RequestClass("a", 0.5, Fixed(1.0))])

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            ClassMix([])

    def test_mean_is_weighted(self):
        mix = bimodal(50, 1.0, 50, 100.0)
        assert mix.mean_us() == pytest.approx(50.5)

    def test_empirical_class_frequencies(self):
        mix = bimodal(99.5, 0.5, 0.5, 500.0)
        r = rng(4)
        kinds = [mix.sample_class(r)[0] for _ in range(40000)]
        long_frac = kinds.count("long") / len(kinds)
        assert long_frac == pytest.approx(0.005, abs=0.002)

    def test_dispersion_ratio(self):
        assert bimodal(50, 1.0, 50, 100.0).dispersion_ratio() == pytest.approx(100.0)

    def test_class_probabilities_mapping(self):
        mix = bimodal(50, 1.0, 50, 100.0)
        assert mix.class_probabilities() == {"short": 0.5, "long": 0.5}

    def test_bimodal_rejects_bad_percentages(self):
        with pytest.raises(ValueError):
            bimodal(60, 1.0, 50, 100.0)

    def test_requestclass_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            RequestClass("a", 0.0, Fixed(1.0))
        with pytest.raises(ValueError):
            RequestClass("a", 1.5, Fixed(1.0))


# -- property-based tests --------------------------------------------------------


@given(
    mean=st.floats(min_value=0.01, max_value=1000.0),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60)
def test_exponential_samples_are_positive(mean, seed):
    dist = Exponential(mean)
    r = random.Random(seed)
    assert all(dist.sample_us(r) >= 0.0 for _ in range(20))


@given(
    short=st.floats(min_value=0.1, max_value=10.0),
    long=st.floats(min_value=10.0, max_value=1000.0),
    short_pct=st.floats(min_value=1.0, max_value=99.0),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60)
def test_bimodal_samples_come_from_the_two_modes(short, long, short_pct, seed):
    mix = bimodal(short_pct, short, 100.0 - short_pct, long)
    r = random.Random(seed)
    for _ in range(30):
        kind, value = mix.sample_class(r)
        assert (kind, value) in {("short", short), ("long", long)}


@given(
    probs=st.lists(
        st.floats(min_value=0.05, max_value=1.0), min_size=2, max_size=6
    ),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60)
def test_classmix_mean_between_extremes(probs, seed):
    total = sum(probs)
    classes = [
        RequestClass("k{}".format(i), p / total, Fixed(float(i + 1)))
        for i, p in enumerate(probs)
    ]
    mix = ClassMix(classes)
    means = [c.distribution.mean_us() for c in classes]
    assert min(means) <= mix.mean_us() <= max(means)
    r = random.Random(seed)
    kind, value = mix.sample_class(r)
    assert kind in {c.kind for c in classes}
