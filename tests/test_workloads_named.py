"""Tests for the paper's named workloads (section 5.1-5.3)."""

import random

import pytest

from repro.workloads import named


def test_registry_contains_all_paper_workloads():
    assert set(named.NAMED_WORKLOADS) == {
        "bimodal-50-1-50-100",
        "bimodal-995-05-500",
        "fixed-1",
        "tpcc",
        "leveldb-5050",
        "leveldb-zippydb",
    }


def test_workload_by_name_roundtrip():
    workload = named.workload_by_name("tpcc")
    assert workload.name == "TPCC"


def test_workload_by_name_unknown_raises():
    with pytest.raises(KeyError):
        named.workload_by_name("nope")


def test_bimodal_50_1_50_100_shape():
    mix = named.bimodal_50_1_50_100()
    probs = mix.class_probabilities()
    assert probs == {"short": 0.5, "long": 0.5}
    assert mix.mean_us() == pytest.approx(50.5)


def test_bimodal_995_05_500_shape():
    mix = named.bimodal_995_05_500()
    assert mix.class_probabilities()["long"] == pytest.approx(0.005)
    assert mix.mean_us() == pytest.approx(0.995 * 0.5 + 0.005 * 500.0)
    assert mix.dispersion_ratio() == pytest.approx(1000.0)


def test_fixed_1us_is_degenerate():
    mix = named.fixed_1us()
    r = random.Random(0)
    assert mix.sample_us(r) == 1.0
    assert mix.mean_us() == 1.0


def test_tpcc_transaction_mix_matches_paper():
    mix = named.tpcc()
    probs = mix.class_probabilities()
    assert probs["Payment"] == pytest.approx(0.44)
    assert probs["NewOrder"] == pytest.approx(0.44)
    assert probs["OrderStatus"] == pytest.approx(0.04)
    assert probs["Delivery"] == pytest.approx(0.04)
    assert probs["StockLevel"] == pytest.approx(0.04)
    # Mean: .44*5.7 + .04*6 + .44*20 + .04*88 + .04*100
    assert mix.mean_us() == pytest.approx(19.07, abs=0.01)


def test_leveldb_5050_service_times():
    mix = named.leveldb_50get_50scan()
    r = random.Random(1)
    seen = {mix.sample_class(r) for _ in range(200)}
    assert ("GET", named.LEVELDB_GET_US) in seen
    assert ("SCAN", named.LEVELDB_SCAN_US) in seen
    # GET 600ns vs SCAN 500us: the 1000x dispersion section 5.3 highlights.
    assert mix.dispersion_ratio() == pytest.approx(1000.0 / 1.2, rel=0.01)


def test_zippydb_mix_matches_meta_traces():
    mix = named.leveldb_zippydb()
    probs = mix.class_probabilities()
    assert probs == pytest.approx(
        {"GET": 0.78, "PUT": 0.13, "DELETE": 0.06, "SCAN": 0.03}
    )
